package fednet

// Chaos tests: seeded fault injection against the full cluster, plus
// focused tests pinning the degradation semantics (straggler exclusion,
// quorum fallback, checkpoint resume) and the injector's determinism.

import (
	"bytes"
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"middle/internal/checkpoint"
	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/tensor"
)

// TestFaultPlanDeterministic pins the injector's core contract: fault
// decisions are a pure function of (seed, rates, link, id, msg), so a
// run's fault pattern is reproducible from its seed alone.
func TestFaultPlanDeterministic(t *testing.T) {
	rates := FaultRates{Drop: 0.2, Delay: 0.1, Corrupt: 0.05, Reset: 0.02}
	a := PlanFaults(7, rates, linkDeviceEdge, 3, 500)
	b := PlanFaults(7, rates, linkDeviceEdge, 3, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan not deterministic at msg %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := PlanFaults(8, rates, linkDeviceEdge, 3, 500)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical 500-message plans")
	}
	// Rough rate sanity: ~37% of messages should be faulted at these rates.
	faults := 0
	for _, k := range a {
		if k != FaultNone {
			faults++
		}
	}
	if faults < 100 || faults > 300 {
		t.Fatalf("implausible fault count %d/500 for total rate 0.37", faults)
	}
}

// TestFaultInjectorDropsMatchPlan drives real frames through a wrapped
// connection and checks the receiver sees exactly the messages PlanFaults
// says survive (drop-only rates keep surviving frames intact).
func TestFaultInjectorDropsMatchPlan(t *testing.T) {
	const seed, id, n = 42, 5, 60
	rates := FaultRates{Drop: 0.3}
	inj := NewFaultInjector(FaultConfig{Seed: seed, DeviceEdge: rates})
	if inj == nil {
		t.Fatal("injector unexpectedly nil")
	}
	plan := PlanFaults(seed, rates, linkDeviceEdge, id, n)
	want := 0
	for _, k := range plan {
		if k == FaultNone {
			want++
		}
	}
	if want == 0 || want == n {
		t.Fatalf("degenerate plan: %d/%d survive", want, n)
	}

	client, server := net.Pipe()
	got := make(chan int, 1)
	go func() {
		count := 0
		for {
			if _, _, err := ReadMsg(server, &TrainReply{}); err != nil {
				break
			}
			count++
		}
		got <- count
	}()
	conn := inj.WrapDeviceLink(client, id)
	for i := 0; i < n; i++ {
		if err := WriteMsg(conn, MsgTrainReply, TrainReply{DeviceID: id, Round: i}, []float64{1, 2, 3}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	client.Close()
	if count := <-got; count != want {
		t.Fatalf("receiver saw %d frames, plan says %d survive", count, want)
	}
}

// TestCorruptFrameRejected pins the CRC guard: a bit flipped in transit
// must surface as ErrCorruptFrame, never as a decoded message.
func TestCorruptFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, MsgTrainReply, TrainReply{DeviceID: 1, Round: 2}, []float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[5] ^= 0x01 // same flip the injector's corrupt fault applies
	var reply TrainReply
	_, _, err := ReadMsg(bytes.NewReader(frame), &reply)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupted frame produced %v, want ErrCorruptFrame", err)
	}
}

// TestClusterChaosSoak runs a full deployment under ≥10% per-message
// drop+delay (plus corruption) on the device–edge links and delays on
// the edge–cloud links, and checks the run completes, the model stays
// finite and the degradation machinery actually fired.
func TestClusterChaosSoak(t *testing.T) {
	mob := mobility.NewMarkovRing(3, 9, 0.4, 7)
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 400, 5, 5)
	part := data.PartitionMajorClass(train, mob.NumDevices(), 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 16, rng),
			nn.NewReLU(),
			nn.NewLinear(16, train.Classes, rng),
		)
	}
	reg := obs.NewRegistry()
	c, err := StartCluster(ClusterConfig{
		Rounds: 10, K: 2, LocalSteps: 2, BatchSize: 8, CloudInterval: 3,
		Strategy: core.NewMiddle(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Mobility:  mob, Seed: 1,
		Timeout:       3 * time.Second,
		RoundDeadline: 2 * time.Second,
		Quorum:        1,
		Faults: &FaultConfig{
			Seed:       99,
			DeviceEdge: FaultRates{Drop: 0.08, Delay: 0.06, Corrupt: 0.02},
			EdgeCloud:  FaultRates{Delay: 0.05},
			MaxDelay:   20 * time.Millisecond,
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("chaos run failed with a real error: %v", err)
	}
	model := c.GlobalModel()
	for i, v := range model {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("global model[%d] = %v after chaos run", i, v)
		}
	}
	injected := int64(0)
	for _, kind := range []string{"drop", "delay", "corrupt"} {
		injected += reg.Counter("fednet_injected_faults_total", "kind", kind).Value()
	}
	if injected == 0 {
		t.Fatal("no faults were injected — rates or wiring broken")
	}
	// The stack must have noticed: at least one of the recovery paths
	// (retries, straggler exclusion, quorum fallback, corrupt-frame
	// rejection) fires under this fault mix and seed.
	recovered := reg.Counter("fednet_retries_total").Value() +
		reg.Counter("fednet_excluded_stragglers_total").Value() +
		reg.Counter("fednet_quorum_misses_total").Value() +
		reg.Counter("fednet_corrupt_frames_total", "link", linkDeviceEdge).Value()
	if recovered == 0 {
		t.Fatalf("faults injected (%d) but no recovery counter moved", injected)
	}
	t.Logf("chaos soak: %d faults injected, %d recoveries, %d tolerated component failures",
		injected, recovered, c.ToleratedFaults())
}

// TestClusterQuorumFallback pins the quorum semantics end to end: with a
// single device per run and Quorum clamped to 2 via K, every round falls
// below quorum, so the edge carries its model and the cloud's global
// model never changes.
func TestClusterQuorumFallback(t *testing.T) {
	mob := mobility.NewStatic(1, 1)
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 60, 3, 5)
	part := data.PartitionMajorClass(train, 1, 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 8, rng),
			nn.NewReLU(),
			nn.NewLinear(8, train.Classes, rng),
		)
	}
	reg := obs.NewRegistry()
	c, err := StartCluster(ClusterConfig{
		Rounds: 4, K: 2, LocalSteps: 1, BatchSize: 8, CloudInterval: 2,
		Strategy: core.NewGeneral(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGD, LR: 0.05},
		Mobility:  mob, Seed: 3,
		Quorum: 2, // one connected device can never meet it
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), c.GlobalModel()...)
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	after := c.GlobalModel()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("global model changed at %d despite permanent quorum miss", i)
		}
	}
	// Every round with the device attached misses quorum. Round 1 may
	// start before the device finishes registering (an empty candidate
	// set is not a quorum miss), so at least 3 of the 4 rounds count.
	if got := reg.Counter("fednet_quorum_misses_total").Value(); got < 3 || got > 4 {
		t.Fatalf("fednet_quorum_misses_total = %d, want 3 or 4", got)
	}
}

// TestEdgeStragglerExclusion registers a silent fake device against a
// real edge and checks the round deadline excludes it: the round reports
// zero trained devices, the straggler counter fires and the device's
// connection is closed rather than leaked in the edge's map.
func TestEdgeStragglerExclusion(t *testing.T) {
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudLn.Close()

	reg := obs.NewRegistry()
	edge, err := NewEdge(EdgeConfig{
		EdgeID: 0, CloudAddr: cloudLn.Addr().String(), Addr: "127.0.0.1:0",
		K: 1, Strategy: core.NewGeneral(), Seed: 1,
		Timeout:       3 * time.Second,
		RoundDeadline: 250 * time.Millisecond,
		MaxRetries:    -1, // single attempt: the deadline, not retries, must exclude
		Obs:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeErr := make(chan error, 1)
	go func() { edgeErr <- edge.Run() }()

	// Fake cloud: init the edge, run one round, then shut it down.
	cc, err := cloudLn.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.SetDeadline(time.Now().Add(5 * time.Second))
	var re RegisterEdge
	if mt, _, err := ReadMsg(cc, &re); err != nil || mt != MsgRegisterEdge {
		t.Fatalf("edge registration: type %d, %v", mt, err)
	}
	if err := WriteMsg(cc, MsgGlobalModel, struct{}{}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	// Silent device: registers, consumes the train request, never replies.
	dev, err := net.Dial("tcp", edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	dev.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteMsg(dev, MsgRegisterDevice, RegisterDevice{DeviceID: 0, DataSize: 10, PrevEdge: -1}, nil); err != nil {
		t.Fatal(err)
	}
	var ack RegisterAck
	if mt, _, err := ReadMsg(dev, &ack); err != nil || mt != MsgRegisterAck {
		t.Fatalf("register ack: type %d, %v", mt, err)
	}

	if err := WriteMsg(cc, MsgRoundStart, RoundStart{Round: 1}, nil); err != nil {
		t.Fatal(err)
	}
	var done RoundDone
	if mt, _, err := ReadMsg(cc, &done); err != nil || mt != MsgRoundDone {
		t.Fatalf("round done: type %d, %v", mt, err)
	}
	if done.Trained != 0 {
		t.Fatalf("silent device counted as trained: %+v", done)
	}
	if got := reg.Counter("fednet_excluded_stragglers_total").Value(); got != 1 {
		t.Fatalf("fednet_excluded_stragglers_total = %d, want 1", got)
	}
	if got := reg.Counter("fednet_quorum_misses_total").Value(); got != 1 {
		t.Fatalf("fednet_quorum_misses_total = %d, want 1 (0 responders < quorum 1)", got)
	}
	edge.mu.Lock()
	leaked := len(edge.devices)
	edge.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("straggler leaked in device map (%d entries)", leaked)
	}
	if err := WriteMsg(cc, MsgShutdown, struct{}{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-edgeErr; err != nil {
		t.Fatalf("edge exited with %v", err)
	}
}

// TestClusterCheckpointResume runs a checkpointing cluster to completion,
// then builds a fresh Cloud over the same directory and checks it resumes
// at the checkpointed round with a byte-identical global model.
func TestClusterCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	mob := mobility.NewStatic(2, 4)
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 120, 3, 5)
	part := data.PartitionMajorClass(train, 4, 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 8, rng),
			nn.NewReLU(),
			nn.NewLinear(8, train.Classes, rng),
		)
	}
	c, err := StartCluster(ClusterConfig{
		Rounds: 6, K: 2, LocalSteps: 1, BatchSize: 8, CloudInterval: 2,
		Strategy: core.NewMiddle(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGD, LR: 0.05},
		Mobility:  mob, Seed: 4,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}

	st, ok, err := checkpoint.LoadLatest(dir)
	if err != nil || !ok {
		t.Fatalf("no checkpoint after run: ok=%v err=%v", ok, err)
	}
	if st.Round != 6 {
		t.Fatalf("latest checkpoint at round %d, want 6", st.Round)
	}

	// "Restart" the cloud over the same directory.
	resumed, err := NewCloud(CloudConfig{
		Addr: "127.0.0.1:0", Edges: 2, Rounds: 12, CloudInterval: 2,
		InitModel:     make([]float64, len(st.Model)),
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.ln.Close()
	if resumed.StartRound() != st.Round {
		t.Fatalf("resumed StartRound = %d, want %d", resumed.StartRound(), st.Round)
	}
	got := resumed.GlobalModel()
	if len(got) != len(st.Model) {
		t.Fatalf("resumed model length %d, want %d", len(got), len(st.Model))
	}
	for i := range got {
		if got[i] != st.Model[i] {
			t.Fatalf("resumed model differs from checkpoint at %d: %v vs %v", i, got[i], st.Model[i])
		}
	}
	final := c.GlobalModel()
	for i := range got {
		if got[i] != final[i] {
			t.Fatalf("resumed model differs from the run's final model at %d", i)
		}
	}
}
