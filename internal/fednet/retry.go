package fednet

import (
	"time"

	"middle/internal/tensor"
)

// Retry policy defaults shared by device and edge RPC paths.
const (
	defaultMaxRetries = 3
	defaultRetryBase  = 50 * time.Millisecond
	maxBackoff        = 2 * time.Second
)

// retryBackoff returns the pause before retry attempt (1-based): capped
// exponential growth from base with deterministic jitter in [0.5, 1.0)×
// derived from (seed, id, attempt), so backoff schedules are
// reproducible for a given run seed yet decorrelated across peers.
func retryBackoff(base time.Duration, attempt int, seed, id int64) time.Duration {
	if base <= 0 {
		base = defaultRetryBase
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	jitter := tensor.Split(seed, id*1_000_003+int64(attempt)*97).Float64()
	return time.Duration((0.5 + 0.5*jitter) * float64(d))
}
