package fednet

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"middle/internal/checkpoint"
	"middle/internal/obs"
	"middle/internal/obs/flight"
	"middle/internal/robust"
)

// CloudConfig configures the coordinating cloud server.
type CloudConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// port in tests).
	Addr string
	// Edges is the number of edge servers to wait for before training.
	Edges int
	// Rounds is the number of Algorithm 1 time steps to coordinate.
	Rounds int
	// CloudInterval is T_c: every this many rounds the cloud aggregates
	// edge models and broadcasts the new global model.
	CloudInterval int
	// InitModel is the initial global model vector.
	InitModel []float64
	// Timeout bounds every network read/write (default 30 s).
	Timeout time.Duration
	// RoundInterval, when > 0, is a floor on the duration of each round:
	// the cloud delays the next RoundStart until this much time has
	// passed since the previous one. Deployments use it to pace rounds
	// against real-time processes (device mobility, devices still
	// attaching) instead of letting empty early rounds burn through the
	// schedule in microseconds. 0 (default) keeps free-running rounds.
	RoundInterval time.Duration
	// MinEdges, when > 0, enables graceful degradation: an edge whose
	// connection fails is dropped and the run continues as long as at
	// least MinEdges remain. At 0 (default) any edge failure aborts the
	// run, the strict pre-fault behaviour.
	MinEdges int
	// CheckpointDir, when set, makes the cloud persist its state (global
	// model + round + per-edge weights) after sync rounds, and NewCloud
	// resume from the latest valid checkpoint found there. Torn or
	// corrupt files are rejected by CRC and skipped.
	CheckpointDir string
	// CheckpointEvery persists every Nth sync round (default 1).
	CheckpointEvery int
	// Shards, when > 1, partitions edges across that many aggregator
	// shards (edgeID mod Shards). Each shard streams a running partial
	// weighted sum as RoundDone frames arrive — edge payloads are
	// released immediately instead of being gathered — and the shards
	// are merged by one final BLAS-1 sweep. Sharded aggregation is
	// epsilon-equivalent to the gathered weighted mean (the reduction is
	// reassociated) and composes only with the mean aggregator and no
	// validator; NewCloud rejects other combinations. ≤ 1 keeps the
	// original gather path, bit-identical to previous behaviour.
	Shards int
	// Aggregator selects the Eq. 7 combiner: "" or "mean" (default),
	// "median", "trimmed-mean" or "norm-clip" (see internal/robust).
	Aggregator robust.AggregatorKind
	// TrimFrac is the trimmed mean's β (0 = robust.DefaultTrimFrac).
	TrimFrac float64
	// Validate screens received edge models before Eq. 7, mirroring the
	// edge-side update validation.
	Validate robust.ValidatorConfig
	// Membership enables the self-healing membership layer: a persistent
	// accept loop, per-edge heartbeat leases driving a miss-count failure
	// detector, mid-run edge rejoin at a bumped epoch, and epoch fencing
	// of frames from stale incarnations. Disabled (the zero value) the
	// cloud behaves exactly as before: a fixed edge set whose failures
	// surface only when an RPC happens to fail.
	Membership MembershipConfig
	// OnEdgeDown, when set, is invoked on its own goroutine after the
	// membership layer declares an edge dead. The in-process cluster uses
	// it to re-home the dead edge's devices onto survivors.
	OnEdgeDown func(edge int)
	// OnEdgeUp, when set, is invoked on its own goroutine after a mid-run
	// edge (re)join is admitted into the membership.
	OnEdgeUp func(edge int)
	// Logf, when set, receives progress lines (default: discarded).
	Logf func(format string, args ...any)
	// OnRound, when set, is invoked after each round fully completes
	// (all edges acked; global model broadcast on sync rounds) and
	// before the next round starts. Demo harnesses use it to move
	// devices between edges at round boundaries.
	OnRound func(round int)
	// Obs, when set, receives per-message byte/latency metrics
	// (fednet_* series). Nil disables metrics at near-zero cost.
	Obs *obs.Registry
	// Trace, when set, records a span per round (plus a sync child) and
	// stamps RoundStart.Span so edges and devices can parent their spans
	// on it. Nil disables tracing at near-zero cost.
	Trace *obs.Trace
}

// Cloud coordinates rounds across edge servers. It is the lockstep
// driver: edges act only on RoundStart messages.
type Cloud struct {
	cfg       CloudConfig
	ln        net.Listener
	m         cloudMetrics
	validator *robust.Validator
	agg       robust.Aggregator

	mu     sync.Mutex
	global []float64

	startRound  int             // rounds ≤ startRound were already completed (resume)
	edgeWeights map[int]float64 // last sync's per-edge weights (checkpointed)

	// Self-healing membership state (nil / unused when disabled).
	ms         *membership
	startEpoch int         // epoch restored from the checkpoint
	assignment map[int]int // device → edge, reported on sync rounds
	lastSync   int         // round of the most recent cloud sync

	// stop requests a graceful drain: the round loop finishes the round
	// in flight, persists a final checkpoint and returns nil.
	stop     chan struct{}
	stopOnce sync.Once
}

// Stop requests a graceful shutdown: the cloud completes the round in
// flight, writes a final checkpoint (when checkpointing is configured),
// broadcasts MsgShutdown and makes Run return nil. Safe to call from
// any goroutine, more than once, and before Run.
func (c *Cloud) Stop() { c.stopOnce.Do(func() { close(c.stop) }) }

// paceRound enforces the RoundInterval floor: it sleeps out whatever
// remains of the interval since the previous round start (recorded in
// *prev), returning early if a graceful stop arrives mid-sleep.
func (c *Cloud) paceRound(prev *time.Time) {
	if c.cfg.RoundInterval > 0 && !prev.IsZero() {
		if d := c.cfg.RoundInterval - time.Since(*prev); d > 0 {
			select {
			case <-time.After(d):
			case <-c.stop:
			}
		}
	}
	*prev = time.Now()
}

// stopping reports whether Stop has been called.
func (c *Cloud) stopping() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// NewCloud builds a cloud server and starts listening (so the address is
// known before Run is called).
func NewCloud(cfg CloudConfig) (*Cloud, error) {
	if cfg.Edges < 1 || cfg.Rounds < 1 || cfg.CloudInterval < 1 {
		return nil, fmt.Errorf("fednet: implausible cloud config %+v", cfg)
	}
	if cfg.Shards > 1 {
		// Partial weighted sums cannot express coordinate-wise medians,
		// trimming, clipping or per-update screening — those need every
		// edge model materialized at once, which is what sharding exists
		// to avoid.
		if agg := (robust.Aggregator{Kind: cfg.Aggregator}); !agg.IsMean() {
			return nil, fmt.Errorf("fednet: %d-shard cloud requires the mean aggregator, got %q", cfg.Shards, cfg.Aggregator)
		}
		if robust.NewValidator(cfg.Validate) != nil {
			return nil, fmt.Errorf("fednet: %d-shard cloud cannot screen edge models; disable validation", cfg.Shards)
		}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("fednet: cloud listen: %w", err)
	}
	cfg.Membership = cfg.Membership.withDefaults()
	cfg.Trace.SetProcessName(tracePidCloud, "cloud")
	c := &Cloud{
		cfg:         cfg,
		ln:          ln,
		m:           newCloudMetrics(cfg.Obs),
		validator:   robust.NewValidator(cfg.Validate),
		agg:         robust.Aggregator{Kind: cfg.Aggregator, TrimFrac: cfg.TrimFrac},
		global:      append([]float64(nil), cfg.InitModel...),
		edgeWeights: map[int]float64{},
		assignment:  map[int]int{},
		stop:        make(chan struct{}),
	}
	if cfg.CheckpointDir != "" {
		// Named load: edges may checkpoint into the same directory.
		st, ok, err := checkpoint.LoadLatestNamed(cfg.CheckpointDir, "global")
		if err != nil {
			ln.Close()
			return nil, err
		}
		if ok {
			c.global = st.Model
			c.startRound = st.Round
			c.startEpoch = st.Epoch
			for id, e := range st.Assignment {
				c.assignment[id] = e
			}
			for id, w := range st.EdgeWeights {
				c.edgeWeights[id] = w
			}
			// Compose per-shard weight books recorded at the same round
			// (the sharded cloud writes one record per shard alongside
			// the global one; each overlays its own edges' weights).
			for sh := 0; sh < cfg.Shards; sh++ {
				shSt, shOk, err := checkpoint.LoadLatestNamed(cfg.CheckpointDir, shardCheckpointName(sh))
				if err != nil || !shOk || shSt.Round != st.Round {
					continue
				}
				for id, w := range shSt.EdgeWeights {
					c.edgeWeights[id] = w
				}
			}
			cfg.Logf("cloud: resuming from checkpoint (round %d)", st.Round)
		}
	}
	return c, nil
}

// Addr returns the cloud's listen address.
func (c *Cloud) Addr() string { return c.ln.Addr().String() }

// GlobalModel returns a copy of the current global model.
func (c *Cloud) GlobalModel() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.global...)
}

// StartRound reports the round the cloud resumes from (0 on a fresh
// start; > 0 when NewCloud restored a checkpoint).
func (c *Cloud) StartRound() int { return c.startRound }

type edgeConn struct {
	id   int
	conn net.Conn
}

// Run accepts the configured number of edges, drives all rounds, and
// shuts the cluster down. It returns once training completes or a
// protocol error occurs.
func (c *Cloud) Run() error {
	if c.cfg.Membership.Enabled {
		return c.runMembership()
	}
	defer c.ln.Close()
	// A Stop during the registration wait closes the listener so Accept
	// unblocks and the run exits cleanly instead of hanging on a quorum
	// that will never arrive.
	regDone := make(chan struct{})
	defer close(regDone)
	go func() {
		select {
		case <-c.stop:
			c.ln.Close()
		case <-regDone:
		}
	}()
	edges := make([]*edgeConn, 0, c.cfg.Edges)
	for len(edges) < c.cfg.Edges {
		conn, err := c.ln.Accept()
		if err != nil {
			if c.stopping() {
				c.cfg.Logf("cloud: graceful stop while waiting for edges (%d/%d registered)", len(edges), c.cfg.Edges)
				return nil
			}
			return fmt.Errorf("fednet: cloud accept: %w", err)
		}
		conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
		var reg RegisterEdge
		t, _, err := c.m.link.readMsg(conn, &reg)
		if err != nil || t != MsgRegisterEdge {
			conn.Close()
			log.Printf("fednet: cloud rejected connection (type %d, err %v)", t, err)
			continue
		}
		edges = append(edges, &edgeConn{id: reg.EdgeID, conn: conn})
		c.cfg.Logf("cloud: edge %d registered (%d/%d)", reg.EdgeID, len(edges), c.cfg.Edges)
	}
	defer func() {
		for _, e := range edges {
			e.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
			_ = c.m.link.writeMsg(e.conn, MsgShutdown, struct{}{}, nil)
			e.conn.Close()
		}
	}()

	// Distribute the initial global model.
	for _, e := range edges {
		e.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
		if err := c.m.link.writeMsg(e.conn, MsgGlobalModel, struct{}{}, c.global); err != nil {
			return fmt.Errorf("fednet: cloud sending init model to edge %d: %w", e.id, err)
		}
	}

	syncCount := 0
	var prevRound time.Time
	for r := c.startRound + 1; r <= c.cfg.Rounds; r++ {
		c.paceRound(&prevRound)
		if c.stopping() {
			c.cfg.Logf("cloud: graceful stop after round %d", r-1)
			c.checkpointFinal(r - 1)
			return nil
		}
		roundTok := c.m.roundSpan.Begin()
		tr := c.cfg.Trace
		traceStart := tr.Now()
		span := ""
		if tr != nil {
			span = cloudRoundSpan(r)
		}
		sync := r%c.cfg.CloudInterval == 0
		alive := edges[:0]
		for _, e := range edges {
			e.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
			if err := c.m.link.writeMsg(e.conn, MsgRoundStart, RoundStart{Round: r, Sync: sync, Span: span}, nil); err != nil {
				countTimeout(c.m.timeouts, err)
				if derr := c.dropEdge(e, r, err); derr != nil {
					return derr
				}
				continue
			}
			alive = append(alive, e)
		}
		edges = alive
		if err := c.checkQuorum(len(edges), r); err != nil {
			return err
		}
		var vecs [][]float64
		var weights []float64
		var sagg *shardAgg
		if sync {
			c.mu.Lock()
			c.edgeWeights = map[int]float64{}
			c.mu.Unlock()
			if c.cfg.Shards > 1 {
				sagg = newShardAgg(c.cfg.Shards, len(c.global))
			}
		}
		alive = edges[:0]
		for _, e := range edges {
			e.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
			var done RoundDone
			t, vec, err := c.m.link.readMsg(e.conn, &done)
			if err != nil || t != MsgRoundDone {
				countTimeout(c.m.timeouts, err)
				if err == nil {
					err = fmt.Errorf("unexpected message type %d", t)
				}
				if derr := c.dropEdge(e, r, err); derr != nil {
					return derr
				}
				continue
			}
			if done.Round != r {
				return fmt.Errorf("fednet: edge %d acked round %d during round %d", e.id, done.Round, r)
			}
			alive = append(alive, e)
			if sync {
				c.mu.Lock()
				c.edgeWeights[e.id] = done.Weight
				c.mu.Unlock()
			}
			if sync && done.Weight > 0 && len(vec) > 0 {
				if sagg != nil {
					// Streaming: fold the payload into its shard's partial
					// sum now and let it go — the cloud never holds more
					// than Shards model vectors regardless of edge count.
					if err := sagg.add(e.id, vec, done.Weight); err != nil {
						return err
					}
				} else {
					vecs = append(vecs, vec)
					weights = append(weights, done.Weight)
				}
			}
		}
		edges = alive
		if err := c.checkQuorum(len(edges), r); err != nil {
			return err
		}
		if sync {
			syncStart := tr.Now()
			fp := flight.BeginPhase("cloud_sync")
			synced := c.applySync(r, vecs, weights, sagg)
			for _, e := range edges {
				e.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
				if err := c.m.link.writeMsg(e.conn, MsgGlobalModel, struct{}{}, c.GlobalModel()); err != nil {
					countTimeout(c.m.timeouts, err)
					return fmt.Errorf("fednet: cloud broadcasting global model to edge %d: %w", e.id, err)
				}
			}
			c.m.syncs.Inc()
			syncCount++
			if c.cfg.CheckpointDir != "" && syncCount%c.cfg.CheckpointEvery == 0 {
				c.checkpointSync(r, sagg)
			}
			fp.End()
			if tr != nil {
				tr.Complete("cloud_sync", "fednet", tracePidCloud, 0,
					syncStart, tr.Now().Sub(syncStart), span+".sync", span,
					map[string]any{"round": r, "edges": synced})
			}
			c.cfg.Logf("cloud: round %d synced %d edge models", r, synced)
		}
		c.m.rounds.Inc()
		roundTok.End()
		if tr != nil {
			tr.Complete("cloud_round", "fednet", tracePidCloud, 0,
				traceStart, tr.Now().Sub(traceStart), span, "",
				map[string]any{"round": r, "sync": sync})
		}
		if c.cfg.OnRound != nil {
			c.cfg.OnRound(r)
		}
	}
	return nil
}

// applySync validates the gathered edge models against the current
// global, combines the survivors with the configured aggregator (or
// merges the streamed shard partials) and installs the new global
// model. It returns the number of edge models that entered Eq. 7.
func (c *Cloud) applySync(r int, vecs [][]float64, weights []float64, sagg *shardAgg) int {
	if c.validator != nil && len(vecs) > 0 {
		kept, keptW, rc := c.validator.Filter(c.GlobalModel(), vecs, weights)
		if rc.Total() > 0 {
			c.m.rejNonFinite.Add(int64(rc.NonFinite))
			c.m.rejNorm.Add(int64(rc.Norm))
			c.cfg.Logf("cloud: round %d rejected %d edge models (%d nonfinite, %d norm)",
				r, rc.Total(), rc.NonFinite, rc.Norm)
		}
		vecs, weights = kept, keptW
	}
	synced := len(vecs)
	if sagg != nil {
		synced = sagg.edges
		next := make([]float64, len(c.global))
		if sagg.mergeInto(next) {
			c.mu.Lock()
			c.global = next
			c.mu.Unlock()
			c.m.shardMerges.Inc()
		}
	} else if len(vecs) > 0 {
		next := make([]float64, len(vecs[0]))
		c.mu.Lock()
		aggStats := c.agg.AggregateInto(next, vecs, weights, c.global)
		c.global = next
		c.mu.Unlock()
		if aggStats.TrimmedValues > 0 {
			c.m.trimmedCoords.Add(int64(aggStats.TrimmedValues))
		}
		if aggStats.ClippedUpdates > 0 {
			c.m.clippedUpdates.Add(int64(aggStats.ClippedUpdates))
		}
	}
	c.lastSync = r
	return synced
}

// checkpointSync persists the cloud state after round r. Membership
// state (epoch + device→edge assignment) rides in the record when the
// membership layer is active; otherwise the record is the plain v2
// state, byte-identical to pre-membership checkpoints.
func (c *Cloud) checkpointSync(r int, sagg *shardAgg) {
	c.mu.Lock()
	st := checkpoint.State{
		Name:        "global",
		Round:       r,
		Model:       append([]float64(nil), c.global...),
		EdgeWeights: c.edgeWeights,
	}
	c.mu.Unlock()
	if c.ms != nil {
		st.Epoch = c.ms.currentEpoch()
		st.Assignment = make(map[int]int, len(c.assignment))
		for d, e := range c.assignment {
			st.Assignment[d] = e
		}
	}
	if _, err := checkpoint.SaveStateFile(c.cfg.CheckpointDir, st); err != nil {
		c.cfg.Logf("cloud: checkpoint at round %d failed: %v", r, err)
	} else {
		c.m.checkpoints.Inc()
		c.cfg.Logf("cloud: checkpointed round %d", r)
	}
	if sagg != nil {
		// Per-shard records (weight book only, no model) compose
		// with the "global" record in the shared directory, so a
		// future per-shard aggregator process can recover its
		// own edges' weights without parsing the global state.
		for sh, w := range sagg.shardWeights(st.EdgeWeights) {
			if w == nil {
				continue
			}
			shSt := checkpoint.State{Name: shardCheckpointName(sh), Round: r, EdgeWeights: w}
			if _, err := checkpoint.SaveStateFile(c.cfg.CheckpointDir, shSt); err != nil {
				c.cfg.Logf("cloud: shard %d checkpoint at round %d failed: %v", sh, r, err)
			}
		}
	}
}

// checkpointFinal persists the state reached after `round` completed,
// used by the graceful Stop drain so a kill-and-resume restart does not
// redo work since the last periodic checkpoint.
func (c *Cloud) checkpointFinal(round int) {
	if c.cfg.CheckpointDir == "" || round <= 0 {
		return
	}
	c.checkpointSync(round, nil)
	c.cfg.Logf("cloud: final checkpoint at round %d", round)
}

// dropEdge handles a failed edge connection. In strict mode (MinEdges
// == 0) the failure is fatal, matching the pre-degradation behaviour;
// otherwise the edge is closed, counted and the run continues (subject
// to checkQuorum).
func (c *Cloud) dropEdge(e *edgeConn, round int, err error) error {
	if c.cfg.MinEdges <= 0 {
		return fmt.Errorf("fednet: cloud lost edge %d in round %d: %w", e.id, round, err)
	}
	e.conn.Close()
	c.m.edgeDrops.Inc()
	c.cfg.Logf("cloud: dropped edge %d in round %d: %v", e.id, round, err)
	return nil
}

// checkQuorum aborts the run once fewer than MinEdges edges survive.
func (c *Cloud) checkQuorum(aliveEdges, round int) error {
	if c.cfg.MinEdges > 0 && aliveEdges < c.cfg.MinEdges {
		return fmt.Errorf("fednet: only %d edges remain in round %d (min %d)", aliveEdges, round, c.cfg.MinEdges)
	}
	return nil
}
