// Package fednet is a networked deployment of the MIDDLE training loop:
// a cloud server, edge servers and device clients speaking a compact
// binary protocol over TCP. The simulation engine (internal/hfl) remains
// the tool for controlled experiments; fednet demonstrates the same
// Algorithm 1 round structure — cloud-coordinated rounds, in-edge device
// selection from cached device state, on-device Eq. 9 aggregation, T_c
// cloud synchronisation — as an actual distributed system, with devices
// that migrate between edge servers mid-training.
//
// Wire format (little-endian): every message is
//
//	type    byte
//	jsonLen uint32, JSON header bytes
//	vecLen  uint32, vecLen float64 values (the model payload, may be 0)
//	crc     uint32 IEEE over everything above
//
// Headers are small JSON structs (stdlib encoding/json); model vectors
// travel as raw float64s to avoid base64 overhead. The CRC trailer lets
// a receiver detect payload corruption (a flipped bit in a model vector
// would otherwise be silently aggregated); a mismatch is reported as
// ErrCorruptFrame and the stream is considered poisoned — the peer must
// reconnect and retry rather than resynchronise mid-stream.
package fednet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"time"
)

// ErrCorruptFrame marks a frame whose CRC trailer did not match its
// content. The bytes already consumed cannot be trusted to align with
// frame boundaries, so callers must treat the connection as dead.
var ErrCorruptFrame = errors.New("fednet: corrupt frame")

// MsgType identifies a protocol message.
type MsgType byte

// Protocol messages.
const (
	// MsgRegisterEdge: edge → cloud. Header: RegisterEdge.
	MsgRegisterEdge MsgType = iota + 1
	// MsgRegisterDevice: device → edge. Header: RegisterDevice.
	MsgRegisterDevice
	// MsgRoundStart: cloud → edge. Header: RoundStart.
	MsgRoundStart
	// MsgRoundDone: edge → cloud. Header: RoundDone. Carries the edge
	// model vector on cloud-sync rounds, empty otherwise.
	MsgRoundDone
	// MsgGlobalModel: cloud → edge after a sync round. Carries the new
	// global model vector.
	MsgGlobalModel
	// MsgTrainRequest: edge → device. Header: TrainRequest. Carries the
	// edge model vector.
	MsgTrainRequest
	// MsgTrainReply: device → edge. Header: TrainReply. Carries the
	// updated local model vector.
	MsgTrainReply
	// MsgShutdown: cloud → edge → device. Ends the session.
	MsgShutdown
	// MsgRegisterAck: edge → device, confirming MsgRegisterDevice.
	// Header: RegisterAck. Carries the edge's current model vector so a
	// reconnecting device resyncs state (model + round counter) without
	// waiting for its next TrainRequest.
	MsgRegisterAck
	// MsgRegisterMux: device multiplexer → edge. Header: RegisterMux.
	// One connection announces a batch of virtual devices; the edge
	// answers with a single MsgRegisterAck (carrying its model) and
	// addresses subsequent train requests by TrainRequest.DeviceID.
	MsgRegisterMux
	// MsgDeviceLeave: device multiplexer → edge. Header: DeviceLeave.
	// Withdraws one virtual device from a multiplexed connection (it
	// moved to another edge) without tearing the connection down.
	MsgDeviceLeave
	// MsgMigrate: source edge → destination edge. Header: Migrate. The
	// vector payload packs a CRC-framed checkpoint.Handover record (see
	// packBytes); the destination answers with MsgMigrateAck on the same
	// short-lived connection.
	MsgMigrate
	// MsgMigrateAck: destination edge → source edge, accepting or
	// rejecting a migration. Header: MigrateAck.
	MsgMigrateAck
	// MsgMoveNotice: device host → source edge. Header: MoveNotice. A
	// fire-and-forget hint that a device is about to move, so a
	// *distributed* deployment (where no central cluster can call
	// Edge.MigrateOut) still triggers the handover push. Loss of the
	// notice simply means a cold join — the standard fallback.
	MsgMoveNotice
	// MsgLease: edge → cloud, on a dedicated heartbeat connection.
	// Header: Lease. Sent every lease interval while the edge considers
	// itself a member; a lease carrying a stale epoch identifies a fenced
	// incarnation and is rejected.
	MsgLease
	// MsgEdgeWelcome: cloud → edge after MsgRegisterEdge when the
	// membership layer is enabled. Header: EdgeWelcome. Carries the
	// current global model vector; replaces the bare MsgGlobalModel the
	// legacy (membership-disabled) cloud sends, so an edge can tell which
	// regime it joined from the first frame it receives.
	MsgEdgeWelcome
)

// maxFrame bounds a frame's payload sizes against corrupt peers.
const maxFrame = 1 << 28

// RegisterEdge announces an edge server to the cloud.
type RegisterEdge struct {
	EdgeID int `json:"edge_id"`
}

// RegisterDevice announces a device to its (current) edge.
type RegisterDevice struct {
	DeviceID int `json:"device_id"`
	DataSize int `json:"data_size"`
	// PrevEdge is the edge the device last trained under (−1 if none);
	// the edge uses it to derive the paper's "moved" predicate.
	PrevEdge int `json:"prev_edge"`
	// Rehome marks a registration that carries device-side warm state
	// because the previous edge died and cannot push a handover record:
	// the frame's vector payload is the device's last local model, and
	// Utility / LastTrained / LastSync restore the edge's cached device
	// statistics (LastTrained is honoured only when LastSync matches the
	// receiving edge's own sync era, mirroring the handover merge rule).
	// All four fields are omitted when the membership layer is disabled,
	// keeping default registrations byte-identical.
	Rehome      bool    `json:"rehome,omitempty"`
	Utility     float64 `json:"utility,omitempty"`
	LastTrained int     `json:"last_trained,omitempty"`
	LastSync    int     `json:"last_sync,omitempty"`
}

// RegisterMux announces a batch of virtual devices sharing one
// connection (see DeviceMux). Sent as the first message of a mux
// connection and again whenever a virtual device migrates onto an edge
// the multiplexer is already attached to.
type RegisterMux struct {
	Devices []RegisterDevice `json:"devices"`
}

// DeviceLeave withdraws one virtual device from a multiplexed
// connection: it moved to another edge and must no longer be selected
// here. The connection itself stays up for its remaining devices.
type DeviceLeave struct {
	DeviceID int `json:"device_id"`
}

// RegisterAck confirms a device registration and resyncs its state.
type RegisterAck struct {
	EdgeID int `json:"edge_id"`
	// Round is the edge's current round counter (0 before training
	// starts); a reconnecting device rejoins at this point.
	Round int `json:"round"`
	// LastSync is the round of the last cloud synchronisation the edge
	// has seen (0 if none yet).
	LastSync int `json:"last_sync"`
}

// Migrate announces a live handover of one moving device from SrcEdge
// to DestEdge. The frame's vector payload carries the encoded
// checkpoint.Handover record packed into float64s; RecordBytes is the
// true byte length (the packing pads to a multiple of 8). The record
// has its own inner CRC on top of the frame CRC: Byzantine rewrites
// recompute the outer checksum, so only the inner one catches them.
type Migrate struct {
	SrcEdge     int `json:"src_edge"`
	DestEdge    int `json:"dest_edge"`
	DeviceID    int `json:"device_id"`
	Generation  int `json:"generation"`
	RecordBytes int `json:"record_bytes"`
	// Span is the source edge's migrate span id ("" when tracing is
	// off); the destination parents its migrate_in span on it.
	Span string `json:"span,omitempty"`
}

// MoveNotice tells a device's current edge that the device is moving to
// DestEdge at DestAddr, carrying the mover's handover generation. The
// edge responds by pushing a MsgMigrate to the destination; the notice
// itself is unacknowledged (the sender closes the connection after the
// write) because every loss mode already degrades to drop-and-reconnect.
type MoveNotice struct {
	DeviceID   int    `json:"device_id"`
	DestEdge   int    `json:"dest_edge"`
	DestAddr   string `json:"dest_addr"`
	Generation int    `json:"generation"`
}

// NotifyMove dials the device's current edge and sends a MoveNotice,
// best-effort: any error is returned for logging but requires no
// handling — a lost notice only costs the warm handover, not progress.
func NotifyMove(edgeAddr string, n MoveNotice, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", edgeAddr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	return WriteMsg(conn, MsgMoveNotice, n, nil)
}

// MigrateAck accepts or rejects a migration.
type MigrateAck struct {
	DeviceID int  `json:"device_id"`
	Accepted bool `json:"accepted"`
	// Reason explains a rejection ("stale_generation", "corrupt_record",
	// "disabled", ...); empty on acceptance.
	Reason string `json:"reason,omitempty"`
}

// RoundStart instructs an edge to run one Algorithm 1 time step.
type RoundStart struct {
	Round int `json:"round"`
	// Sync marks a T_c boundary: the edge must report its model and
	// will receive the new global model.
	Sync bool `json:"sync"`
	// Span is the cloud's trace span id for this round ("" when tracing
	// is off); the edge parents its own round span on it so the
	// device→edge→cloud spans of one round form a single trace tree.
	Span string `json:"span,omitempty"`
	// Epoch is the membership epoch the receiving incarnation was
	// welcomed under (0 when the membership layer is disabled, which
	// keeps legacy frames byte-identical).
	Epoch int `json:"epoch,omitempty"`
}

// RoundDone acknowledges a completed round to the cloud.
type RoundDone struct {
	EdgeID int `json:"edge_id"`
	Round  int `json:"round"`
	// Weight is Σ d_m over devices that trained this sync period
	// (cloud aggregation weight d̂_n); meaningful on sync rounds.
	Weight float64 `json:"weight"`
	// Trained reports how many devices trained this round (diagnostics).
	Trained int `json:"trained"`
	// Epoch echoes the incarnation epoch from the edge's welcome; the
	// cloud fences frames whose epoch does not match the registered
	// incarnation (a zombie edge that was already declared dead). Zero
	// when the membership layer is disabled.
	Epoch int `json:"epoch,omitempty"`
	// Devices lists the device ids currently registered at the edge,
	// reported on sync rounds when the membership layer is enabled so
	// the cloud can checkpoint the device→edge assignment. Nil otherwise.
	Devices []int `json:"devices,omitempty"`
}

// Lease is one edge heartbeat. Seq increments per beat so a detector
// can distinguish a fresh lease from a retransmission.
type Lease struct {
	EdgeID int `json:"edge_id"`
	Epoch  int `json:"epoch"`
	Seq    int `json:"seq"`
}

// EdgeWelcome admits an edge incarnation into the membership, assigning
// it the epoch all its subsequent frames must carry. The frame's vector
// payload is the current global model: a rejoining edge adopts it as a
// catch-up sync (its checkpointed local progress predates the current
// sync era and would otherwise re-enter aggregation stale).
type EdgeWelcome struct {
	// Epoch is the incarnation epoch assigned to this edge.
	Epoch int `json:"epoch"`
	// Round is the last completed cloud round; the edge resumes at
	// Round+1.
	Round int `json:"round"`
	// LastSync is the round of the most recent cloud synchronisation.
	LastSync int `json:"last_sync"`
	// LeaseMillis is the heartbeat interval the cloud's failure detector
	// expects; the edge must send a MsgLease at least this often.
	LeaseMillis int `json:"lease_millis"`
	// Rejoin marks a mid-run welcome (the run was already past its first
	// round when this edge registered); purely diagnostic.
	Rejoin bool `json:"rejoin,omitempty"`
}

// TrainRequest asks a device to run I local steps from the given start
// model (already blended by the device according to its AggMode).
type TrainRequest struct {
	Round int `json:"round"`
	// DeviceID addresses one virtual device on a multiplexed connection
	// (zero-valued and ignored on dedicated per-device connections).
	DeviceID int `json:"device_id,omitempty"`
	// Moved tells the device whether the edge considers it newly
	// arrived (m ∉ M^{t−1}_n), enabling on-device aggregation.
	Moved bool `json:"moved"`
	// ResetLocal tells the device to discard its carried local model
	// first (issued on the round after a cloud sync, Algorithm 1
	// lines 14–15).
	ResetLocal bool `json:"reset_local"`
	// Span is the edge's trace span id for this train RPC ("" when
	// tracing is off); the device parents its training span on it.
	Span string `json:"span,omitempty"`
	// WantMoments asks the device to append its optimizer moment state
	// to the reply payload (set when the edge runs with live migration,
	// so a later handover can ship the moments along).
	WantMoments bool `json:"want_moments,omitempty"`
	// Resume marks the one-shot request that follows an accepted
	// migration: the payload is edge model ++ migrated moments (split by
	// MomentLens) and the device imports the moments instead of
	// resetting its optimizer, continuing from OptSteps.
	Resume bool `json:"resume,omitempty"`
	// MomentLens splits the appended moment state into optimizer groups
	// (see optim.MomentExporter); nil when no moments travel.
	MomentLens []int `json:"moment_lens,omitempty"`
	// OptSteps is the optimizer step counter accompanying Resume.
	OptSteps int `json:"opt_steps,omitempty"`
}

// TrainReply returns the device's updated model and bookkeeping.
type TrainReply struct {
	DeviceID int     `json:"device_id"`
	Round    int     `json:"round"`
	DataSize int     `json:"data_size"`
	Utility  float64 `json:"utility"` // Oort statistical utility
	// MomentLens/OptSteps describe the optimizer moment state appended
	// to the payload after the model when the request set WantMoments.
	MomentLens []int `json:"moment_lens,omitempty"`
	OptSteps   int   `json:"opt_steps,omitempty"`
}

// packBytes packs an opaque byte record into the frame's float64 vector
// payload (8 bytes per element, zero-padded); the header must carry the
// true byte length so unpackBytes can trim the padding. Reusing the
// vector slot keeps MsgMigrate inside the one-frame-per-Write property
// the fault injector depends on.
func packBytes(p []byte) []float64 {
	vec := make([]float64, (len(p)+7)/8)
	for i := range vec {
		var chunk [8]byte
		copy(chunk[:], p[8*i:])
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[:]))
	}
	return vec
}

// unpackBytes recovers the byte record packed by packBytes; ok is false
// when the claimed length does not fit the vector.
func unpackBytes(vec []float64, n int) (p []byte, ok bool) {
	if n < 0 || n > 8*len(vec) || n < 8*len(vec)-7 {
		return nil, false
	}
	p = make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(p[8*i:], math.Float64bits(v))
	}
	return p[:n], true
}

// WriteMsg frames and writes one message.
func WriteMsg(w io.Writer, t MsgType, header any, vec []float64) error {
	_, err := WriteMsgCount(w, t, header, vec)
	return err
}

// WriteMsgCount frames and writes one message, reporting how many bytes
// actually went onto the wire (which may be short on error).
func WriteMsgCount(w io.Writer, t MsgType, header any, vec []float64) (int, error) {
	js, err := json.Marshal(header)
	if err != nil {
		return 0, fmt.Errorf("fednet: marshal header: %w", err)
	}
	buf := make([]byte, 1+4+len(js)+4+8*len(vec)+4)
	buf[0] = byte(t)
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(js)))
	copy(buf[5:], js)
	off := 5 + len(js)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(vec)))
	off += 4
	for _, v := range vec {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return w.Write(buf)
}

// ReadMsg reads one framed message; header is decoded into headerOut
// (pass a pointer, or nil to discard).
func ReadMsg(r io.Reader, headerOut any) (MsgType, []float64, error) {
	t, vec, _, err := ReadMsgCount(r, headerOut)
	return t, vec, err
}

// ReadMsgCount reads one framed message and additionally reports how
// many bytes were consumed from the stream (the partial count on error).
func ReadMsgCount(r io.Reader, headerOut any) (MsgType, []float64, int, error) {
	total := 0
	sum := crc32.NewIEEE()
	var tb [1]byte
	n, err := io.ReadFull(r, tb[:])
	total += n
	if err != nil {
		return 0, nil, total, err
	}
	sum.Write(tb[:])
	var lb [4]byte
	n, err = io.ReadFull(r, lb[:])
	total += n
	if err != nil {
		return 0, nil, total, fmt.Errorf("fednet: reading header length: %w", err)
	}
	sum.Write(lb[:])
	jsonLen := binary.LittleEndian.Uint32(lb[:])
	if jsonLen > maxFrame {
		return 0, nil, total, fmt.Errorf("fednet: header length %d too large", jsonLen)
	}
	js := make([]byte, jsonLen)
	n, err = io.ReadFull(r, js)
	total += n
	if err != nil {
		return 0, nil, total, fmt.Errorf("fednet: reading header: %w", err)
	}
	sum.Write(js)
	n, err = io.ReadFull(r, lb[:])
	total += n
	if err != nil {
		return 0, nil, total, fmt.Errorf("fednet: reading vector length: %w", err)
	}
	sum.Write(lb[:])
	vecLen := binary.LittleEndian.Uint32(lb[:])
	if vecLen > maxFrame/8 {
		return 0, nil, total, fmt.Errorf("fednet: vector length %d too large", vecLen)
	}
	var raw []byte
	if vecLen > 0 {
		raw = make([]byte, 8*vecLen)
		n, err = io.ReadFull(r, raw)
		total += n
		if err != nil {
			return 0, nil, total, fmt.Errorf("fednet: reading vector: %w", err)
		}
		sum.Write(raw)
	}
	n, err = io.ReadFull(r, lb[:])
	total += n
	if err != nil {
		return 0, nil, total, fmt.Errorf("fednet: reading checksum: %w", err)
	}
	if binary.LittleEndian.Uint32(lb[:]) != sum.Sum32() {
		return 0, nil, total, fmt.Errorf("fednet: frame checksum mismatch (type %d): %w", tb[0], ErrCorruptFrame)
	}
	// Only decode the header once the frame is known intact — a corrupt
	// but syntactically valid JSON header must never reach the caller.
	if headerOut != nil && jsonLen > 0 {
		if err := json.Unmarshal(js, headerOut); err != nil {
			return 0, nil, total, fmt.Errorf("fednet: decoding header: %w", err)
		}
	}
	var vec []float64
	if vecLen > 0 {
		vec = make([]float64, vecLen)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	}
	return MsgType(tb[0]), vec, total, nil
}
