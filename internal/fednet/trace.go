package fednet

import "strconv"

// Chrome-trace process-id layout: each component renders as its own
// Perfetto process row. Edge pids assume fewer than 90 edges, which is
// an order of magnitude beyond the paper's deployments.
const (
	tracePidCloud      = 1
	tracePidEdgeBase   = 10
	tracePidDeviceBase = 100
)

// Round/RPC span-id scheme. Ids are globally unique strings carried in
// the protocol envelope (RoundStart.Span, TrainRequest.Span) so the
// device→edge→cloud spans of one round parent into a single tree even
// across process boundaries:
//
//	c.r<N>            cloud round N (root)
//	c.r<N>.sync       cloud aggregation + broadcast on sync rounds
//	e<E>.r<N>         edge E's round N, parent c.r<N>
//	e<E>.r<N>.d<M>    edge E's train RPC to device M, parent e<E>.r<N>
//	e<E>.r<N>.d<M>.t  device M's local training, parent the RPC span
//
// In a distributed deployment each process records only its own spans,
// so a per-process trace file may reference a parent recorded by
// another process; merge the files (or run in-process with a shared
// Trace) to validate the full tree.
func cloudRoundSpan(round int) string { return "c.r" + strconv.Itoa(round) }

func edgeRoundSpan(edge, round int) string {
	return "e" + strconv.Itoa(edge) + ".r" + strconv.Itoa(round)
}

func trainRPCSpan(edgeSpan string, device int) string {
	return edgeSpan + ".d" + strconv.Itoa(device)
}

// Migration spans form the dual-parented handover pair: the source edge
// records e<S>.mig.d<M>.g<G> under its own round span, the destination
// records e<D>.migin.d<M>.g<G> under *its* round span while referencing
// the source span id carried in Migrate.Span — one logical handover
// visible beneath both edges' rounds. Handovers run between rounds, so
// each edge queues the event and emits it as an instant at the start of
// its next round (see Edge.pendingTrace); the ids are therefore keyed
// by the handover generation, not a round number.
func migrateSpan(edge, device, generation int) string {
	return "e" + strconv.Itoa(edge) + ".mig.d" + strconv.Itoa(device) + ".g" + strconv.Itoa(generation)
}

func migrateInSpan(edge, device, generation int) string {
	return "e" + strconv.Itoa(edge) + ".migin.d" + strconv.Itoa(device) + ".g" + strconv.Itoa(generation)
}
