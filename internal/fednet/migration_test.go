package fednet

// Live migration tests: the stateful edge-to-edge handover path under
// clean conditions (resume + dual-parented trace spans), under targeted
// chaos on the edge–edge link (every faulted handover must fall back to
// drop-and-reconnect, never lose a device), and disabled (the default
// path must not move a single migration counter).

import (
	"math"
	"testing"
	"time"

	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/tensor"
)

func migrationClusterConfig(t *testing.T, rounds int, mob mobility.Model) ClusterConfig {
	t.Helper()
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 400, 5, 5)
	part := data.PartitionMajorClass(train, mob.NumDevices(), 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 16, rng),
			nn.NewReLU(),
			nn.NewLinear(16, train.Classes, rng),
		)
	}
	return ClusterConfig{
		Rounds: rounds, K: 2, LocalSteps: 2, BatchSize: 8, CloudInterval: 3,
		Strategy: core.NewMiddle(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Mobility:  mob, Seed: 1,
		LiveMigration: true,
	}
}

func migrationCounts(reg *obs.Registry) (ok, fallback, rejected int64) {
	return reg.Counter("fednet_migrations_total", "outcome", "ok").Value(),
		reg.Counter("fednet_migrations_total", "outcome", "fallback").Value(),
		reg.Counter("fednet_migrations_total", "outcome", "rejected").Value()
}

// TestClusterLiveMigrationResume is the tentpole acceptance test: under
// high mobility with migration enabled, handovers complete ("ok"
// outcomes) and each completed transfer is visible in the trace as a
// dual-parented pair — a "migrate" span under the source edge's round
// and a "migrate_in" span under the destination edge's round whose
// src_span argument names its "migrate" twin.
func TestClusterLiveMigrationResume(t *testing.T) {
	mob := mobility.NewMarkovRing(3, 9, 0.5, 7)
	cfg := migrationClusterConfig(t, 12, mob)
	reg := obs.NewRegistry()
	trace := obs.NewTrace(0)
	cfg.Obs, cfg.Trace = reg, trace
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range c.GlobalModel() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("global model[%d] = %v after migration run", i, v)
		}
	}

	ok, fallback, rejected := migrationCounts(reg)
	if ok == 0 {
		t.Fatalf("no successful migrations under p=0.5 mobility (ok=%d fallback=%d rejected=%d)",
			ok, fallback, rejected)
	}

	events := trace.Events()
	if err := obs.ValidateTraceEvents(events); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	span := func(e obs.TraceEvent) string { p, _ := e.Args["span"].(string); return p }
	parent := func(e obs.TraceEvent) string { p, _ := e.Args["parent"].(string); return p }
	byID := map[string]obs.TraceEvent{}
	var migrates, migrateIns []obs.TraceEvent
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		if id := span(e); id != "" {
			byID[id] = e
		}
		switch e.Name {
		case "migrate":
			migrates = append(migrates, e)
		case "migrate_in":
			migrateIns = append(migrateIns, e)
		}
	}
	if len(migrates) == 0 || len(migrateIns) == 0 {
		t.Fatalf("migrate spans = %d, migrate_in spans = %d; want both > 0",
			len(migrates), len(migrateIns))
	}
	okSpans := 0
	for _, e := range migrates {
		if p := byID[parent(e)]; p.Name != "edge_round" {
			t.Fatalf("migrate %q parented on %q, want the source edge_round", span(e), parent(e))
		}
		if out, _ := e.Args["outcome"].(string); out == "ok" {
			okSpans++
		}
	}
	if okSpans == 0 {
		t.Fatal("no migrate span carries outcome=ok despite the ok counter moving")
	}
	for _, e := range migrateIns {
		if p := byID[parent(e)]; p.Name != "edge_round" {
			t.Fatalf("migrate_in %q parented on %q, want the destination edge_round", span(e), parent(e))
		}
		src, _ := e.Args["src_span"].(string)
		if src == "" {
			t.Fatalf("migrate_in %q carries no src_span back-reference", span(e))
		}
		twin, okTwin := byID[src]
		if !okTwin || twin.Name != "migrate" {
			t.Fatalf("migrate_in %q src_span %q does not name a migrate span", span(e), src)
		}
		// The two halves of the pair live under different edges' rounds:
		// that is the dual-parent property.
		if twin.Pid == e.Pid {
			t.Fatalf("migrate pair %q/%q recorded under the same edge pid %d", src, span(e), e.Pid)
		}
	}
	t.Logf("migrations: %d ok, %d fallback, %d rejected; %d migrate / %d migrate_in spans",
		ok, fallback, rejected, len(migrates), len(migrateIns))
}

// TestClusterMigrationChaos injects drop, corruption, partition and
// Byzantine rewrites specifically on the edge–edge migration link. The
// run must still complete: every faulted handover degrades to
// drop-and-reconnect ("fallback") or a clean rejection ("rejected" via
// the record's inner CRC), no device is lost, and the usual device–edge
// traffic is untouched.
func TestClusterMigrationChaos(t *testing.T) {
	mob := mobility.NewMarkovRing(3, 9, 0.5, 7)
	cfg := migrationClusterConfig(t, 9, mob)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	cfg.Timeout = 3 * time.Second
	cfg.RoundDeadline = 2 * time.Second
	// MigrateTimeout bounds how long a faulted handover attempt blocks
	// the mobility step; transfers are loopback, so keep it tight or the
	// drop/partition faults serialize into minutes of waiting.
	cfg.MigrateTimeout = 150 * time.Millisecond
	cfg.Quorum = 1
	cfg.Faults = &FaultConfig{
		Seed:     42,
		EdgeEdge: FaultRates{Drop: 0.3, Corrupt: 0.15, Partition: 0.1, Poison: 0.2},
		MaxDelay: 10 * time.Millisecond,
	}
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("migration chaos run failed with a real error: %v", err)
	}
	for i, v := range c.GlobalModel() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("global model[%d] = %v after migration chaos", i, v)
		}
	}

	injected := int64(0)
	for _, kind := range []string{"drop", "corrupt", "partition", "poison"} {
		injected += reg.Counter("fednet_injected_faults_total", "kind", kind).Value()
	}
	if injected == 0 {
		t.Fatal("no faults injected on the edge_edge link — rates or wiring broken")
	}
	ok, fallback, rejected := migrationCounts(reg)
	if ok+fallback+rejected == 0 {
		t.Fatal("no migrations attempted under p=0.5 mobility")
	}
	if fallback+rejected == 0 {
		t.Fatalf("faults injected (%d) but every handover completed (ok=%d) — chaos not reaching the migrate link", injected, ok)
	}
	// No device may be stranded by migration failures: fallback is a cold
	// join, and the Connect retry loop keeps the device attached.
	if s := c.Stranded(); len(s) != 0 {
		t.Fatalf("devices stranded after migration chaos: %v", s)
	}
	total := 0
	for _, r := range c.DeviceRounds() {
		total += r
	}
	if total == 0 {
		t.Fatal("no device trained — chaos on the migrate link leaked into training")
	}
	t.Logf("migration chaos: %d faults, %d ok / %d fallback / %d rejected, %d tolerated component failures",
		injected, ok, fallback, rejected, c.ToleratedFaults())
}

// TestClusterMigrationDisabledInert pins the default path: without
// LiveMigration not a single migration counter, handover observation or
// edge-edge byte may move. (Bit-identity of disabled runs is pinned in
// internal/hfl, where execution is deterministic; a socket cluster's
// arrival order is not.)
func TestClusterMigrationDisabledInert(t *testing.T) {
	mob := mobility.NewMarkovRing(3, 9, 0.5, 7)
	cfg := migrationClusterConfig(t, 9, mob)
	cfg.LiveMigration = false
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	ok, fallback, rejected := migrationCounts(reg)
	if ok+fallback+rejected != 0 {
		t.Fatalf("migration counters moved with LiveMigration off: ok=%d fallback=%d rejected=%d",
			ok, fallback, rejected)
	}
	if sent := reg.Counter("fednet_sent_msgs_total", "link", linkEdgeEdge).Value(); sent != 0 {
		t.Fatalf("edge_edge link carried %d messages with LiveMigration off", sent)
	}
}

// TestPackBytesRoundTrip covers the byte<->float64 shim that carries the
// handover record through the vector slot of the wire protocol.
func TestPackBytesRoundTrip(t *testing.T) {
	for n := 0; n <= 33; n++ {
		in := make([]byte, n)
		for i := range in {
			in[i] = byte(i*37 + n)
		}
		out, ok := unpackBytes(packBytes(in), n)
		if !ok {
			t.Fatalf("unpackBytes rejected its own packing at n=%d", n)
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d bytes back", n, len(out))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("n=%d: byte %d = %d, want %d", n, i, out[i], in[i])
			}
		}
	}
	vec := packBytes(make([]byte, 16))
	for _, bad := range []int{-1, 8, 17, 1 << 30} {
		if _, ok := unpackBytes(vec, bad); ok {
			t.Fatalf("unpackBytes accepted inconsistent length %d for a 16-byte payload", bad)
		}
	}
}
