package fednet

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/tensor"
)

func TestWriteReadMsgCount(t *testing.T) {
	var buf bytes.Buffer
	vec := []float64{1, 2, 3}
	wrote, err := WriteMsgCount(&buf, MsgTrainReply, TrainReply{DeviceID: 3}, vec)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != buf.Len() {
		t.Fatalf("WriteMsgCount reported %d, buffer has %d", wrote, buf.Len())
	}
	_, gotVec, read, err := ReadMsgCount(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if read != wrote {
		t.Fatalf("ReadMsgCount consumed %d, want %d", read, wrote)
	}
	if len(gotVec) != len(vec) {
		t.Fatalf("vector %v", gotVec)
	}
	// A truncated stream still reports the bytes it did consume.
	full := wrote
	var buf2 bytes.Buffer
	if _, err := WriteMsgCount(&buf2, MsgTrainReply, TrainReply{DeviceID: 3}, vec); err != nil {
		t.Fatal(err)
	}
	cut := buf2.Bytes()[:full-4]
	_, _, partial, err := ReadMsgCount(bytes.NewReader(cut), nil)
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
	if partial != len(cut) {
		t.Fatalf("partial count %d, want %d", partial, len(cut))
	}
}

// TestLinkByteAccounting runs a scripted cloud↔edge exchange over a
// loopback connection with a separate registry per endpoint and checks
// that every byte one side sends, the other side receives.
func TestLinkByteAccounting(t *testing.T) {
	cloudReg := obs.NewRegistry()
	edgeReg := obs.NewRegistry()
	cloudLink := newLinkMetrics(cloudReg, linkEdgeCloud)
	edgeLink := newLinkMetrics(edgeReg, linkEdgeCloud)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	model := make([]float64, 500)
	for i := range model {
		model[i] = float64(i) * 0.5
	}

	srvErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		// Cloud side: read registration, send model, read ack.
		var reg RegisterEdge
		if _, _, err := cloudLink.readMsg(conn, &reg); err != nil {
			srvErr <- err
			return
		}
		if err := cloudLink.writeMsg(conn, MsgGlobalModel, struct{}{}, model); err != nil {
			srvErr <- err
			return
		}
		var done RoundDone
		if _, _, err := cloudLink.readMsg(conn, &done); err != nil {
			srvErr <- err
			return
		}
		srvErr <- nil
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	// Edge side: register, receive model, ack with its own payload.
	if err := edgeLink.writeMsg(conn, MsgRegisterEdge, RegisterEdge{EdgeID: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, vec, err := edgeLink.readMsg(conn, nil); err != nil || len(vec) != len(model) {
		t.Fatalf("edge receiving model: %v (len %d)", err, len(vec))
	}
	if err := edgeLink.writeMsg(conn, MsgRoundDone, RoundDone{EdgeID: 1, Round: 1, Weight: 3}, model); err != nil {
		t.Fatal(err)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}

	cloudSent := cloudReg.Counter("fednet_sent_bytes_total", "link", linkEdgeCloud).Value()
	cloudRecv := cloudReg.Counter("fednet_recv_bytes_total", "link", linkEdgeCloud).Value()
	edgeSent := edgeReg.Counter("fednet_sent_bytes_total", "link", linkEdgeCloud).Value()
	edgeRecv := edgeReg.Counter("fednet_recv_bytes_total", "link", linkEdgeCloud).Value()
	if cloudSent == 0 || edgeSent == 0 {
		t.Fatalf("no bytes recorded: cloud sent %d, edge sent %d", cloudSent, edgeSent)
	}
	if cloudSent != edgeRecv {
		t.Fatalf("cloud sent %d bytes but edge received %d", cloudSent, edgeRecv)
	}
	if edgeSent != cloudRecv {
		t.Fatalf("edge sent %d bytes but cloud received %d", edgeSent, cloudRecv)
	}
	// The model payload dominates: 500 float64s ≈ 4 kB per carry.
	if cloudSent < 4000 {
		t.Fatalf("cloud sent only %d bytes for a %d-float model", cloudSent, len(model))
	}
	if got := cloudReg.Counter("fednet_sent_msgs_total", "link", linkEdgeCloud).Value(); got != 1 {
		t.Fatalf("cloud sent msgs %d, want 1", got)
	}
	if got := edgeReg.Counter("fednet_recv_msgs_total", "link", linkEdgeCloud).Value(); got != 1 {
		t.Fatalf("edge recv msgs %d, want 1", got)
	}
}

// TestClusterMetrics runs a small end-to-end deployment with a shared
// registry and checks the whole fednet series family shows up.
func TestClusterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	mob := mobility.NewMarkovRing(2, 6, 0.4, 7)
	profClusterMetricsRun(t, reg, mob)

	if got := reg.Counter("fednet_rounds_total").Value(); got != 6 {
		t.Fatalf("fednet_rounds_total = %d, want 6", got)
	}
	if got := reg.Counter("fednet_cloud_syncs_total").Value(); got != 2 {
		t.Fatalf("fednet_cloud_syncs_total = %d, want 2 (rounds 3 and 6)", got)
	}
	for _, link := range []string{linkDeviceEdge, linkEdgeCloud} {
		sent := reg.Counter("fednet_sent_bytes_total", "link", link).Value()
		recv := reg.Counter("fednet_recv_bytes_total", "link", link).Value()
		if sent == 0 || recv == 0 {
			t.Fatalf("link %s traffic: sent %d recv %d", link, sent, recv)
		}
		// Both endpoints of every link share this in-process registry, so
		// each delivered byte is counted once sent and once received.
		// Sends can exceed receives (shutdown frames and requests to
		// migrated devices are written but may never be read) — never the
		// reverse.
		if recv > sent {
			t.Fatalf("link %s received more than was sent: sent %d recv %d", link, sent, recv)
		}
	}
	// Drops are legitimate under mobility (an edge can select a device
	// that migrated between selection and the training RPC), but every
	// selected-and-connected device pair should not fail.
	if got := reg.Counter("fednet_device_drops_total").Value(); got > 6*2*2 {
		t.Fatalf("implausibly many drops: %d", got)
	}
	if got := reg.Counter("fednet_move_errors_total").Value(); got != 0 {
		t.Fatalf("unexpected move errors: %d", got)
	}
	for _, op := range []string{"cloud_round", "edge_round", "train_rpc", "device_train"} {
		h := reg.Histogram("fednet_rpc_seconds", obs.DurationBuckets(), "op", op)
		if h.Count() == 0 {
			t.Fatalf("fednet_rpc_seconds{op=%q} has no observations", op)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fednet_sent_bytes_total{link="device_edge"}`,
		`fednet_rpc_seconds_count{op="train_rpc"}`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %s", want)
		}
	}
}

func profClusterMetricsRun(t *testing.T, reg *obs.Registry, mob mobility.Model) {
	t.Helper()
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 400, 5, 5)
	part := data.PartitionMajorClass(train, mob.NumDevices(), 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 16, rng),
			nn.NewReLU(),
			nn.NewLinear(16, train.Classes, rng),
		)
	}
	c, err := StartCluster(ClusterConfig{
		Rounds: 6, K: 2, LocalSteps: 2, BatchSize: 8, CloudInterval: 3,
		Strategy: core.NewMiddle(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Mobility:  mob, Seed: 1, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}
