package fednet

import (
	"fmt"

	"middle/internal/simil"
)

// shardAgg is the sharded Eq. 7 accumulator: edges are partitioned
// across K aggregator shards by edgeID % K, each shard streaming the
// partial weighted sum Σ d̂_n·w_n of its edges as RoundDone frames
// arrive, and the shards are merged by one final BLAS-1 sweep
// (axpy-accumulate then a single scale by 1/ΣW). Peak memory is K
// model vectors instead of one vector per reporting edge, and each
// edge's payload is released as soon as it is folded in.
//
// Merging Σwᵢvᵢ / ΣW reassociates the floating-point reduction
// relative to the gather-then-WeightedAverageInto path, so sharded
// aggregation is epsilon-equivalent, not bit-identical; Shards ≤ 1
// keeps the original path untouched. Because partial sums cannot
// express coordinate-wise medians or per-update screening, NewCloud
// rejects Shards > 1 combined with a robust aggregator or validator.
type shardAgg struct {
	k        int
	dim      int
	partials [][]float64 // lazily allocated: Σ w·vec per shard
	weights  []float64   // Σ w per shard
	edges    int         // contributions folded in
}

func newShardAgg(k, dim int) *shardAgg {
	return &shardAgg{k: k, dim: dim, partials: make([][]float64, k), weights: make([]float64, k)}
}

// add folds one edge's model into its shard's running weighted sum.
func (s *shardAgg) add(edgeID int, vec []float64, w float64) error {
	if len(vec) != s.dim {
		return fmt.Errorf("fednet: edge %d reported a %d-dim model, want %d", edgeID, len(vec), s.dim)
	}
	if w <= 0 {
		return nil
	}
	sh := edgeID % s.k
	if sh < 0 {
		sh += s.k
	}
	if s.partials[sh] == nil {
		s.partials[sh] = make([]float64, s.dim)
	}
	simil.AxpyInto(s.partials[sh], vec, w)
	s.weights[sh] += w
	s.edges++
	return nil
}

// mergeInto combines the per-shard partial sums into dst (the weighted
// mean over every contribution). It reports false — dst untouched —
// when no edge contributed.
func (s *shardAgg) mergeInto(dst []float64) bool {
	totalW := 0.0
	for _, w := range s.weights {
		totalW += w
	}
	if totalW <= 0 {
		return false
	}
	clear(dst)
	for sh, p := range s.partials {
		if p == nil || s.weights[sh] == 0 {
			continue
		}
		simil.AxpyInto(dst, p, 1)
	}
	simil.ScaleInto(dst, 1/totalW)
	return true
}

// shardWeights splits the cloud's edge-weight book by shard so each
// shard can persist (and recover) its own named checkpoint record.
func (s *shardAgg) shardWeights(all map[int]float64) []map[int]float64 {
	out := make([]map[int]float64, s.k)
	for id, w := range all {
		sh := id % s.k
		if sh < 0 {
			sh += s.k
		}
		if out[sh] == nil {
			out[sh] = map[int]float64{}
		}
		out[sh][id] = w
	}
	return out
}

// shardCheckpointName names per-shard cloud checkpoint records so they
// compose with the cloud's "global" record (and the edges' "edgeN"
// records) in one shared directory.
func shardCheckpointName(sh int) string { return fmt.Sprintf("shard%d", sh) }
