package fednet

import (
	"bytes"
	"io"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/tensor"
)

// --- protocol codec -------------------------------------------------------

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	vec := []float64{1.5, -2, math.Pi}
	in := TrainRequest{Round: 7, Moved: true, ResetLocal: true}
	if err := WriteMsg(&buf, MsgTrainRequest, in, vec); err != nil {
		t.Fatal(err)
	}
	var out TrainRequest
	typ, gotVec, err := ReadMsg(&buf, &out)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgTrainRequest || out.Round != in.Round || out.Moved != in.Moved || out.ResetLocal != in.ResetLocal {
		t.Fatalf("got type %d header %+v", typ, out)
	}
	for i := range vec {
		if gotVec[i] != vec[i] {
			t.Fatalf("vector %v", gotVec)
		}
	}
}

func TestProtocolEmptyVector(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, MsgShutdown, struct{}{}, nil); err != nil {
		t.Fatal(err)
	}
	typ, vec, err := ReadMsg(&buf, nil)
	if err != nil || typ != MsgShutdown || vec != nil {
		t.Fatalf("type %d vec %v err %v", typ, vec, err)
	}
}

func TestProtocolRejectsOversizedFrames(t *testing.T) {
	// Hand-craft a frame claiming a gigantic header.
	raw := []byte{byte(MsgRoundStart), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadMsg(bytes.NewReader(raw), nil); err == nil {
		t.Fatal("oversized header accepted")
	}
}

func TestProtocolTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, MsgTrainReply, TrainReply{DeviceID: 1}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 1, 3, len(raw) / 2, len(raw) - 1} {
		if _, _, err := ReadMsg(bytes.NewReader(raw[:cut]), nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// EOF at a clean frame boundary is io.EOF specifically.
	if _, _, err := ReadMsg(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("clean EOF error %v", err)
	}
}

func TestProtocolSequentialMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteMsg(&buf, MsgRoundStart, RoundStart{Round: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		var rs RoundStart
		typ, _, err := ReadMsg(&buf, &rs)
		if err != nil || typ != MsgRoundStart || rs.Round != i {
			t.Fatalf("message %d: type %d round %d err %v", i, typ, rs.Round, err)
		}
	}
}

// --- aggregation mode mapping ----------------------------------------------

func TestAggModeForStrategy(t *testing.T) {
	cases := map[string]AggMode{
		"MIDDLE":     AggEq9,
		"MIDDLE-Agg": AggEq9,
		"FedMes":     AggHalf,
		"Ensemble":   AggHalf,
		"Greedy":     AggKeep,
		"OORT":       AggEdge,
		"General":    AggEdge,
		"MIDDLE-Sel": AggEdge,
	}
	for name, want := range cases {
		if got := AggModeForStrategy(name); got != want {
			t.Errorf("%s -> %s, want %s", name, got, want)
		}
	}
}

// --- end-to-end cluster ------------------------------------------------------

func clusterFixture(t *testing.T, strat hfl.Strategy, rounds int, mob mobility.Model) *Cluster {
	t.Helper()
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 400, 5, 5)
	part := data.PartitionMajorClass(train, mob.NumDevices(), 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 16, rng),
			nn.NewReLU(),
			nn.NewLinear(16, train.Classes, rng),
		)
	}
	c, err := StartCluster(ClusterConfig{
		Rounds: rounds, K: 2, LocalSteps: 2, BatchSize: 8, CloudInterval: 3,
		Strategy: strat, Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Mobility:  mob, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterEndToEndMiddle(t *testing.T) {
	mob := mobility.NewMarkovRing(3, 9, 0.4, 7)
	c := clusterFixture(t, core.NewMiddle(), 9, mob)
	before := c.GlobalModel()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	after := c.GlobalModel()
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("global model never changed")
	}
	rounds := c.DeviceRounds()
	total := 0
	for _, r := range rounds {
		total += r
	}
	// 9 rounds × 3 edges × up to K=2 devices each.
	if total == 0 || total > 9*3*2 {
		t.Fatalf("device training rounds %v (total %d)", rounds, total)
	}
}

func TestClusterTrainingImprovesAccuracy(t *testing.T) {
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 600, 9, 9)
	test := data.GenerateImagesSplit(prof, 200, 9, 91)
	mob := mobility.NewMarkovRing(2, 8, 0.3, 3)
	part := data.PartitionMajorClass(train, 8, 60, 0.85, 4)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 24, rng),
			nn.NewReLU(),
			nn.NewLinear(24, train.Classes, rng),
		)
	}
	c, err := StartCluster(ClusterConfig{
		Rounds: 15, K: 3, LocalSteps: 4, BatchSize: 12, CloudInterval: 5,
		Strategy: core.NewMiddle(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Mobility:  mob, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	evalNet := factory(tensor.NewRNG(1))
	evalNet.SetParamVector(c.GlobalModel())
	x, y := test.Batch(test.All())
	accBefore := nn.Accuracy(evalNet.Forward(x, false), y)
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	evalNet.SetParamVector(c.GlobalModel())
	accAfter := nn.Accuracy(evalNet.Forward(x, false), y)
	if accAfter < accBefore+0.2 {
		t.Fatalf("networked training barely improved: %v -> %v", accBefore, accAfter)
	}
	if c.MoveErrors() != 0 {
		t.Fatalf("%d device migrations failed", c.MoveErrors())
	}
}

func TestClusterAllStrategiesRun(t *testing.T) {
	for _, strat := range []hfl.Strategy{core.NewOort(), core.NewFedMes(), core.NewGreedy()} {
		mob := mobility.NewMarkovRing(2, 6, 0.5, 11)
		c := clusterFixture(t, strat, 6, mob)
		if err := c.Wait(); err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
	}
}

func TestClusterStaticMobility(t *testing.T) {
	mob := mobility.NewStatic(2, 6)
	c := clusterFixture(t, core.NewGeneral(), 6, mob)
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.MoveErrors() != 0 {
		t.Fatal("static mobility produced move errors")
	}
}

func TestClusterRejectsMismatchedSizes(t *testing.T) {
	prof := data.FastImageProfile(2)
	train := data.GenerateImagesSplit(prof, 40, 5, 5)
	part := data.PartitionMajorClass(train, 4, 10, 0.8, 1)
	mob := mobility.NewStatic(2, 6) // 6 ≠ 4
	_, err := StartCluster(ClusterConfig{
		Rounds: 1, K: 1, CloudInterval: 1,
		Strategy: core.NewGeneral(), Partition: part,
		Factory: func(rng *tensor.RNG) *nn.Network {
			return nn.NewMLP(nn.MLPConfig{In: train.SampleSize(), Classes: 2}, rng)
		},
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGD, LR: 0.1},
		Mobility:  mob, Seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "devices") {
		t.Fatalf("mismatch accepted: %v", err)
	}
}

// TestDeviceSurvivesEdgeVanishing exercises the failure path: a device
// whose edge dies mid-session must exit its serve loop cleanly.
func TestDeviceSurvivesEdgeVanishing(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			// Consume the registration, ack it, then vanish.
			_, _, _ = ReadMsg(conn, &RegisterDevice{})
			_ = WriteMsg(conn, MsgRegisterAck, RegisterAck{EdgeID: 0}, nil)
			conn.Close()
		}
		accepted <- conn
	}()
	prof := data.FastImageProfile(2)
	train := data.GenerateImagesSplit(prof, 20, 5, 5)
	dev, err := NewDevice(DeviceConfig{
		DeviceID: 1, Dataset: train, Indices: []int{0, 1, 2},
		Factory: func(rng *tensor.RNG) *nn.Network {
			return nn.NewMLP(nn.MLPConfig{In: train.SampleSize(), Classes: 2}, rng)
		},
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGD, LR: 0.1}.New(),
		Timeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Connect(0, ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	<-accepted
	// Disconnect must not hang even though the peer is gone.
	doneCh := make(chan struct{})
	go func() {
		dev.Disconnect()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Disconnect hung after edge vanished")
	}
	ln.Close()
}

// --- causal round tracing -----------------------------------------------------

// TestClusterTraceTree runs a full deployment with a shared trace and
// checks the device→edge→cloud spans of every round form one valid,
// correctly parented, monotonically ordered tree.
func TestClusterTraceTree(t *testing.T) {
	const rounds, cloudInterval = 6, 3
	mob := mobility.NewMarkovRing(3, 9, 0.4, 7)
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 400, 5, 5)
	part := data.PartitionMajorClass(train, mob.NumDevices(), 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 16, rng),
			nn.NewReLU(),
			nn.NewLinear(16, train.Classes, rng),
		)
	}
	trace := obs.NewTrace(0)
	c, err := StartCluster(ClusterConfig{
		Rounds: rounds, K: 2, LocalSteps: 2, BatchSize: 8, CloudInterval: cloudInterval,
		Strategy: core.NewMiddle(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Mobility:  mob, Seed: 1, Trace: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}

	events := trace.Events()
	if err := obs.ValidateTraceEvents(events); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}

	// Round-trip through the JSON exporter: same validation must hold on
	// what a Perfetto user would actually load.
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := obs.ReadTraceJSON(&buf)
	if err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	if err := obs.ValidateTraceEvents(decoded); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}

	span := func(e obs.TraceEvent) string { p, _ := e.Args["span"].(string); return p }
	parent := func(e obs.TraceEvent) string { p, _ := e.Args["parent"].(string); return p }
	byName := map[string][]obs.TraceEvent{}
	byID := map[string]obs.TraceEvent{}
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		byName[e.Name] = append(byName[e.Name], e)
		if id := span(e); id != "" {
			byID[id] = e
		}
	}

	cloudRounds := byName["cloud_round"]
	if len(cloudRounds) != rounds {
		t.Fatalf("cloud_round spans = %d, want %d", len(cloudRounds), rounds)
	}
	var lastEnd int64 = -1
	for i, e := range cloudRounds {
		if want := cloudRoundSpan(i + 1); span(e) != want {
			t.Fatalf("cloud_round[%d] span %q, want %q", i, span(e), want)
		}
		if parent(e) != "" {
			t.Fatalf("cloud_round[%d] has parent %q, want root", i, parent(e))
		}
		if e.Ts < lastEnd {
			t.Fatalf("cloud_round[%d] starts at %d before previous round ended at %d", i, e.Ts, lastEnd)
		}
		lastEnd = e.Ts + e.Dur
	}

	if got, want := len(byName["cloud_sync"]), rounds/cloudInterval; got != want {
		t.Fatalf("cloud_sync spans = %d, want %d", got, want)
	}
	for _, e := range byName["cloud_sync"] {
		if p := byID[parent(e)]; p.Name != "cloud_round" {
			t.Fatalf("cloud_sync %q parented on %q, want a cloud_round", span(e), parent(e))
		}
	}

	if got, want := len(byName["edge_round"]), rounds*mob.NumEdges(); got != want {
		t.Fatalf("edge_round spans = %d, want %d", got, want)
	}
	for _, e := range byName["edge_round"] {
		if p := byID[parent(e)]; p.Name != "cloud_round" {
			t.Fatalf("edge_round %q parented on %q, want a cloud_round", span(e), parent(e))
		}
	}

	rpcs := byName["train_rpc"]
	if len(rpcs) == 0 {
		t.Fatal("no train_rpc spans recorded")
	}
	for _, e := range rpcs {
		if p := byID[parent(e)]; p.Name != "edge_round" {
			t.Fatalf("train_rpc %q parented on %q, want an edge_round", span(e), parent(e))
		}
	}
	trains := byName["device_train"]
	if len(trains) != len(rpcs) {
		t.Fatalf("device_train spans = %d, train_rpc spans = %d, want equal", len(trains), len(rpcs))
	}
	for _, e := range trains {
		if p := byID[parent(e)]; p.Name != "train_rpc" {
			t.Fatalf("device_train %q parented on %q, want a train_rpc", span(e), parent(e))
		}
	}
}
