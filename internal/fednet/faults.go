package fednet

// Deterministic, seedable fault injection for the fednet stack. A
// FaultInjector wraps the client end of a connection and perturbs whole
// frames on the write path: because WriteMsgCount emits each message as
// exactly one Write call, every Write the wrapper sees is one protocol
// frame, so drop/delay/corrupt/reset/partition decisions apply
// per-message, matching the paper's lossy-wireless device model.
//
// Determinism: the decision for a message is a pure function of
// (seed, link class, link id, message index). Message indices are kept
// per link in the injector — not per connection — so a reconnect
// continues the sequence instead of replaying it, and the set of
// injected faults for a given seed is identical across runs regardless
// of goroutine interleaving. PlanFaults exposes the same function for
// tests to pin that property.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"net"
	"sync"
	"time"

	"middle/internal/obs"
	"middle/internal/tensor"
)

// ErrInjected marks an error that was caused by the fault injector
// rather than a real failure; Cluster.Wait tolerates these.
var ErrInjected = errors.New("fednet: injected fault")

// FaultKind classifies one injected fault decision.
type FaultKind int

// Fault decisions, in cumulative-probability order. The last two model
// Byzantine senders rather than a lossy wire: the frame is rewritten
// with a corrupted payload and a recomputed CRC, so it decodes cleanly
// at the receiver and must be caught by model validation, not by the
// transport.
const (
	FaultNone FaultKind = iota
	FaultDrop
	FaultDelay
	FaultCorrupt
	FaultReset
	FaultPartition
	FaultPoisonUpdate
	FaultNaNUpdate
)

// String names the fault kind for metric labels and test output.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	case FaultReset:
		return "reset"
	case FaultPartition:
		return "partition"
	case FaultPoisonUpdate:
		return "poison"
	case FaultNaNUpdate:
		return "nan"
	default:
		return "none"
	}
}

// FaultRates holds per-message fault probabilities for one link class.
// The probabilities are cumulative-exclusive: a message suffers at most
// one fault, and the sum of all rates must be ≤ 1.
type FaultRates struct {
	Drop      float64 // message silently lost
	Delay     float64 // message held back up to MaxDelay before sending
	Corrupt   float64 // one payload byte flipped (CRC catches it)
	Reset     float64 // connection closed mid-conversation
	Partition float64 // one-way partition: this and the next PartitionMsgs writes vanish
	Poison    float64 // model payload negated, CRC recomputed (decodes cleanly)
	NaNUpdate float64 // model payload set to NaN, CRC recomputed (decodes cleanly)
}

func (fr FaultRates) zero() bool {
	return fr.Drop == 0 && fr.Delay == 0 && fr.Corrupt == 0 && fr.Reset == 0 &&
		fr.Partition == 0 && fr.Poison == 0 && fr.NaNUpdate == 0
}

// FaultConfig configures a FaultInjector.
type FaultConfig struct {
	// Seed drives every fault decision; same seed → same faults.
	Seed int64
	// DeviceEdge applies to device→edge writes, EdgeCloud to edge→cloud,
	// EdgeEdge to edge→edge migration transfers (MsgMigrate frames).
	DeviceEdge FaultRates
	EdgeCloud  FaultRates
	EdgeEdge   FaultRates
	// MaxDelay bounds injected delays (default 25ms).
	MaxDelay time.Duration
	// PartitionMsgs is how many subsequent writes a partition swallows
	// (default 4).
	PartitionMsgs int
	// Obs receives fednet_injected_faults_total{kind} counters (may be nil).
	Obs *obs.Registry
}

// FaultInjector wraps connections to apply a FaultConfig. A nil
// injector is valid and wraps nothing.
type FaultInjector struct {
	cfg FaultConfig

	mu    sync.Mutex
	state map[linkKey]*linkFaultState

	counters [FaultNaNUpdate + 1]*obs.Counter
}

type linkKey struct {
	link string
	id   int
}

type linkFaultState struct {
	nextMsg       int // next message index on this link
	partitionLeft int // writes still swallowed by an open partition window
}

// NewFaultInjector builds an injector; returns nil when cfg injects
// nothing, so callers can pass the result around unconditionally.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.DeviceEdge.zero() && cfg.EdgeCloud.zero() && cfg.EdgeEdge.zero() {
		return nil
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 25 * time.Millisecond
	}
	if cfg.PartitionMsgs <= 0 {
		cfg.PartitionMsgs = 4
	}
	f := &FaultInjector{cfg: cfg, state: make(map[linkKey]*linkFaultState)}
	for k := FaultDrop; k <= FaultNaNUpdate; k++ {
		f.counters[k] = cfg.Obs.Counter("fednet_injected_faults_total", "kind", k.String())
	}
	return f
}

// WrapDeviceLink wraps a device's connection to its edge (link id =
// device id). Nil-safe: a nil injector returns conn unchanged.
func (f *FaultInjector) WrapDeviceLink(conn net.Conn, deviceID int) net.Conn {
	if f == nil {
		return conn
	}
	return f.wrap(conn, linkDeviceEdge, deviceID, f.rates(linkDeviceEdge))
}

// WrapEdgeLink wraps an edge's connection to the cloud (link id =
// edge id). Nil-safe.
func (f *FaultInjector) WrapEdgeLink(conn net.Conn, edgeID int) net.Conn {
	if f == nil {
		return conn
	}
	return f.wrap(conn, linkEdgeCloud, edgeID, f.rates(linkEdgeCloud))
}

// WrapMigrateLink wraps a source edge's migration connection to a
// destination edge (link id = the moving device's id, so chaos tests
// can target one device's handovers). Nil-safe.
func (f *FaultInjector) WrapMigrateLink(conn net.Conn, deviceID int) net.Conn {
	if f == nil {
		return conn
	}
	return f.wrap(conn, linkEdgeEdge, deviceID, f.rates(linkEdgeEdge))
}

func (f *FaultInjector) rates(link string) FaultRates {
	switch link {
	case linkEdgeCloud:
		return f.cfg.EdgeCloud
	case linkEdgeEdge:
		return f.cfg.EdgeEdge
	default:
		return f.cfg.DeviceEdge
	}
}

func (f *FaultInjector) wrap(conn net.Conn, link string, id int, rates FaultRates) net.Conn {
	if f == nil || rates.zero() {
		return conn
	}
	return &faultConn{Conn: conn, inj: f, link: link, id: id, rates: rates}
}

// linkState returns (creating if needed) the persistent per-link state.
func (f *FaultInjector) linkState(link string, id int) *linkFaultState {
	k := linkKey{link, id}
	st := f.state[k]
	if st == nil {
		st = &linkFaultState{}
		f.state[k] = st
	}
	return st
}

// decide consumes one message index on the link and returns the fault
// decision plus the state needed to act on it.
func (f *FaultInjector) decide(link string, id int, rates FaultRates) (kind FaultKind, delay time.Duration) {
	f.mu.Lock()
	st := f.linkState(link, id)
	idx := st.nextMsg
	st.nextMsg++
	if st.partitionLeft > 0 {
		st.partitionLeft--
		f.mu.Unlock()
		f.counters[FaultDrop].Inc()
		return FaultDrop, 0
	}
	kind, frac := decideFault(f.cfg.Seed, rates, link, id, idx)
	if kind == FaultPartition {
		st.partitionLeft = f.cfg.PartitionMsgs
	}
	f.mu.Unlock()
	if kind != FaultNone {
		f.counters[kind].Inc()
	}
	if kind == FaultDelay {
		delay = time.Duration(frac * float64(f.cfg.MaxDelay))
	}
	return kind, delay
}

// linkCode gives each link class a disjoint id-space region for Split.
func linkCode(link string) int64 {
	switch link {
	case linkEdgeCloud:
		return 2
	case linkEdgeEdge:
		return 3
	default:
		return 1
	}
}

// decideFault is the pure decision function: same (seed, rates, link,
// id, msg) → same outcome. frac is a uniform [0,1) value callers may
// use to size the fault (delay duration).
func decideFault(seed int64, rates FaultRates, link string, id, msg int) (FaultKind, float64) {
	rng := tensor.Split(seed, linkCode(link)<<40|int64(id)<<20|int64(msg))
	u := rng.Float64()
	frac := rng.Float64()
	switch {
	case u < rates.Drop:
		return FaultDrop, frac
	case u < rates.Drop+rates.Delay:
		return FaultDelay, frac
	case u < rates.Drop+rates.Delay+rates.Corrupt:
		return FaultCorrupt, frac
	case u < rates.Drop+rates.Delay+rates.Corrupt+rates.Reset:
		return FaultReset, frac
	case u < rates.Drop+rates.Delay+rates.Corrupt+rates.Reset+rates.Partition:
		return FaultPartition, frac
	case u < rates.Drop+rates.Delay+rates.Corrupt+rates.Reset+rates.Partition+rates.Poison:
		return FaultPoisonUpdate, frac
	case u < rates.Drop+rates.Delay+rates.Corrupt+rates.Reset+rates.Partition+rates.Poison+rates.NaNUpdate:
		return FaultNaNUpdate, frac
	default:
		return FaultNone, frac
	}
}

// PlanFaults returns the fault decisions for the first n messages of a
// link under the given seed and rates — the exact sequence a run with
// that seed will apply, independent of timing or interleaving.
func PlanFaults(seed int64, rates FaultRates, link string, id, n int) []FaultKind {
	plan := make([]FaultKind, n)
	for i := range plan {
		plan[i], _ = decideFault(seed, rates, link, id, i)
	}
	return plan
}

// faultConn applies per-message write faults to one connection.
type faultConn struct {
	net.Conn
	inj   *FaultInjector
	link  string
	id    int
	rates FaultRates
}

func (c *faultConn) Write(b []byte) (int, error) {
	kind, delay := c.inj.decide(c.link, c.id, c.rates)
	switch kind {
	case FaultDrop, FaultPartition:
		// Pretend success; the peer never sees the frame and its read
		// deadline (or the edge round deadline) handles the loss.
		return len(b), nil
	case FaultDelay:
		time.Sleep(delay)
	case FaultCorrupt:
		// Flip a bit inside the JSON header region so the frame still
		// parses structurally and the receiver's CRC check trips.
		if len(b) > 5 {
			mb := make([]byte, len(b))
			copy(mb, b)
			mb[5] ^= 0x01
			b = mb
		}
	case FaultPoisonUpdate:
		b = rewriteVector(b, func(v float64) float64 { return -v })
	case FaultNaNUpdate:
		b = rewriteVector(b, func(float64) float64 { return math.NaN() })
	case FaultReset:
		c.Conn.Close()
		return 0, &injectedErr{op: "write", kind: FaultReset}
	}
	return c.Conn.Write(b)
}

// rewriteVector returns a copy of frame b with every float of its
// vector payload transformed by fn and the CRC trailer recomputed, so
// the frame decodes cleanly at the receiver: a Byzantine sender signs
// its own lies. Frames without a vector (or that don't parse as exactly
// one frame) pass through unchanged.
func rewriteVector(b []byte, fn func(float64) float64) []byte {
	if len(b) < 1+4+4+4 {
		return b
	}
	jsonLen := int(binary.LittleEndian.Uint32(b[1:5]))
	off := 5 + jsonLen
	if jsonLen < 0 || off+4 > len(b)-4 {
		return b
	}
	vecLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	end := off + 8*vecLen
	if vecLen <= 0 || end+4 != len(b) {
		return b
	}
	mb := make([]byte, len(b))
	copy(mb, b)
	for i := 0; i < vecLen; i++ {
		p := off + 8*i
		v := math.Float64frombits(binary.LittleEndian.Uint64(mb[p:]))
		binary.LittleEndian.PutUint64(mb[p:], math.Float64bits(fn(v)))
	}
	binary.LittleEndian.PutUint32(mb[end:], crc32.ChecksumIEEE(mb[:end]))
	return mb
}

// injectedErr is returned by injected resets; errors.Is(err, ErrInjected)
// reports true so harnesses can tolerate it.
type injectedErr struct {
	op   string
	kind FaultKind
}

func (e *injectedErr) Error() string {
	return "fednet: injected " + e.kind.String() + " on " + e.op
}

func (e *injectedErr) Unwrap() error { return ErrInjected }
