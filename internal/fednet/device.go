package fednet

import (
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"middle/internal/data"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/obs/flight"
	"middle/internal/optim"
	"middle/internal/simil"
	"middle/internal/tensor"
)

// AggMode selects the on-device model-initialisation behaviour, the
// device-side half of each strategy (the edge-side half is selection).
type AggMode string

// On-device aggregation modes.
const (
	// AggEdge adopts the downloaded edge model (General, OORT).
	AggEdge AggMode = "edge"
	// AggEq9 applies the paper's similarity-weighted blend (MIDDLE).
	AggEq9 AggMode = "eq9"
	// AggHalf averages edge and carried models 50/50 (FedMes, Ensemble).
	AggHalf AggMode = "half"
	// AggKeep keeps the carried model wholesale (Greedy).
	AggKeep AggMode = "keep"
)

// AggModeForStrategy maps a strategy name to its device-side behaviour.
func AggModeForStrategy(name string) AggMode {
	switch name {
	case "MIDDLE", "MIDDLE-Agg":
		return AggEq9
	case "FedMes", "Ensemble":
		return AggHalf
	case "Greedy":
		return AggKeep
	default:
		return AggEdge
	}
}

// DeviceConfig configures one device client.
type DeviceConfig struct {
	DeviceID int
	// Dataset + Indices define the device's local shard.
	Dataset *data.Dataset
	Indices []int
	// Factory builds the task architecture; the device owns one instance.
	Factory func(rng *tensor.RNG) *nn.Network
	// Optimizer spec for local training.
	Optimizer optim.Optimizer
	// LocalSteps (I) and BatchSize per training round.
	LocalSteps int
	BatchSize  int
	// Mode is the on-device aggregation behaviour.
	Mode AggMode
	// Seed derives the device's batch-sampling randomness.
	Seed int64
	// Timeout bounds network operations (default 30 s).
	Timeout time.Duration
	// MaxRetries is how many times Connect (and the automatic reconnect
	// after a non-deliberate connection loss) retries the dial+register
	// handshake (default 3).
	MaxRetries int
	// RetryBase is the base retry backoff, grown exponentially with
	// deterministic jitter (default 50 ms).
	RetryBase time.Duration
	// Faults, when set, injects faults on the device→edge link.
	Faults *FaultInjector
	// Failover lists alternate edges the device may re-home to on its
	// own when its current edge becomes unreachable (the automatic
	// reconnect exhausts its retries). Candidates are tried in order,
	// skipping the failed edge; the re-home registration carries the
	// device's own warm state (Rehome). Nil (the default) keeps the old
	// behaviour: a device whose edge died stays down until the next
	// Connect call.
	Failover []EdgeAddr
	// Logf, when set, receives progress lines (default: discarded).
	Logf func(format string, args ...any)
	// Obs, when set, receives per-message byte/latency metrics
	// (fednet_* series). Nil disables metrics at near-zero cost.
	Obs *obs.Registry
	// Trace, when set, records a span per local-training round parented
	// on the edge's RPC span (TrainRequest.Span). Nil disables tracing.
	Trace *obs.Trace
}

// EdgeAddr names one failover candidate.
type EdgeAddr struct {
	ID   int
	Addr string
}

// Device is a mobile client. Connect attaches it to an edge (closing any
// previous attachment — that is the "move"), after which it serves
// training requests until disconnected or shut down.
type Device struct {
	cfg DeviceConfig
	net *nn.Network
	m   deviceMetrics

	mu       sync.Mutex
	conn     net.Conn
	prevEdge int
	local    []float64 // carried local model (nil until first training)
	rounds   int       // training rounds served (diagnostics)
	done     chan struct{}
	// gen is bumped by every deliberate attachment change (Connect,
	// Disconnect, accepted reconnect). A serve loop whose generation is
	// stale knows its connection was replaced on purpose and must not
	// auto-reconnect; a reconnect attempt whose generation is stale
	// discards its dialed connection instead of installing it.
	gen int
	// edgeSync is the edge round counter from the last registration ack
	// (resync diagnostics).
	edgeSync int
	// lastUtil / lastTrained / lastSync snapshot what a warm re-home
	// registration carries: the device's most recent Oort utility, the
	// round it last trained in, and the cloud-sync round it last observed
	// (from the registration ack). A new edge honours lastTrained only
	// when lastSync matches its own — same era rule as handover.
	lastUtil    float64
	lastTrained int
	lastSync    int
}

// NewDevice builds a device client.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if cfg.Dataset == nil || len(cfg.Indices) == 0 || cfg.Factory == nil || cfg.Optimizer == nil {
		return nil, fmt.Errorf("fednet: incomplete device config for device %d", cfg.DeviceID)
	}
	if cfg.LocalSteps < 1 {
		cfg.LocalSteps = 10
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.Mode == "" {
		cfg.Mode = AggEdge
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.Trace.SetProcessName(tracePidDeviceBase+cfg.DeviceID, fmt.Sprintf("device%d", cfg.DeviceID))
	return &Device{
		cfg:         cfg,
		net:         cfg.Factory(tensor.Split(cfg.Seed, int64(1000+cfg.DeviceID))),
		m:           newDeviceMetrics(cfg.Obs),
		prevEdge:    -1,
		lastTrained: -1,
	}, nil
}

// Connect attaches the device to the edge at addr (identified by edgeID
// for the moved predicate), detaching from any previous edge first. The
// dial+register handshake — now acknowledged by the edge, so a
// registration lost to a fault is detected — is retried with capped
// backoff. The device then serves training requests in a background
// goroutine and reconnects by itself if the connection later fails for
// any reason other than Disconnect or a newer Connect.
func (d *Device) Connect(edgeID int, addr string) error {
	d.Disconnect()
	d.mu.Lock()
	d.gen++
	gen := d.gen
	d.mu.Unlock()
	return d.dialAndServe(edgeID, addr, gen, false)
}

// ConnectRehome is Connect with a warm re-home registration: the device
// announces that its previous edge is gone and carries its own local
// model, utility, and round bookkeeping so the new edge resumes it warm.
// It is the failover counterpart of a live MsgMigrate handover, which a
// dead source edge can no longer push.
func (d *Device) ConnectRehome(edgeID int, addr string) error {
	d.Disconnect()
	d.mu.Lock()
	d.gen++
	gen := d.gen
	d.mu.Unlock()
	return d.dialAndServe(edgeID, addr, gen, true)
}

// dialAndServe performs the dial+register+ack handshake with retries
// and, on success, installs the connection (unless gen went stale — a
// Connect/Disconnect superseded this attempt) and starts the serve loop.
// With rehome set the registration carries the device's warm state.
func (d *Device) dialAndServe(edgeID int, addr string, gen int, rehome bool) error {
	var lastErr error
	for attempt := 0; attempt <= d.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			d.m.retries.Inc()
			time.Sleep(retryBackoff(d.cfg.RetryBase, attempt, d.cfg.Seed,
				int64(d.cfg.DeviceID)*1_000_003+int64(edgeID)))
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			lastErr = fmt.Errorf("fednet: device %d dialing edge %d: %w", d.cfg.DeviceID, edgeID, err)
			continue
		}
		conn = d.cfg.Faults.WrapDeviceLink(conn, d.cfg.DeviceID)
		conn.SetDeadline(time.Now().Add(d.cfg.Timeout))
		d.mu.Lock()
		reg := RegisterDevice{DeviceID: d.cfg.DeviceID, DataSize: len(d.cfg.Indices), PrevEdge: d.prevEdge}
		var payload []float64
		if rehome {
			reg.Rehome = true
			if !math.IsNaN(d.lastUtil) && !math.IsInf(d.lastUtil, 0) {
				reg.Utility = d.lastUtil
			}
			reg.LastTrained = d.lastTrained
			reg.LastSync = d.lastSync
			if d.local != nil {
				payload = append([]float64(nil), d.local...)
			}
		}
		d.mu.Unlock()
		if err := d.m.link.writeMsg(conn, MsgRegisterDevice, reg, payload); err != nil {
			conn.Close()
			lastErr = fmt.Errorf("fednet: device %d registering at edge %d: %w", d.cfg.DeviceID, edgeID, err)
			continue
		}
		var ack RegisterAck
		t, _, err := d.m.link.readMsg(conn, &ack)
		if err != nil || t != MsgRegisterAck {
			conn.Close()
			lastErr = fmt.Errorf("fednet: device %d awaiting register ack from edge %d: type %d, %v", d.cfg.DeviceID, edgeID, t, err)
			continue
		}
		conn.SetDeadline(time.Time{})
		d.mu.Lock()
		if d.gen != gen {
			d.mu.Unlock()
			conn.Close()
			return nil // superseded by a newer Connect/Disconnect
		}
		d.conn = conn
		d.done = make(chan struct{})
		d.edgeSync = ack.Round
		d.lastSync = ack.LastSync
		done := d.done
		d.mu.Unlock()
		go d.serve(conn, edgeID, addr, done, gen)
		return nil
	}
	return lastErr
}

// Disconnect detaches from the current edge (a "move away"); it is safe
// to call when not connected.
func (d *Device) Disconnect() {
	d.mu.Lock()
	conn, done := d.conn, d.done
	d.conn, d.done = nil, nil
	d.gen++ // invalidate any in-flight reconnect attempt
	d.mu.Unlock()
	if conn != nil {
		conn.Close()
		<-done // wait for the serve loop to exit
	}
}

// maybeReconnect is called by a serve loop whose connection failed. If
// the failure was deliberate (Disconnect or a newer Connect already
// replaced the attachment) it does nothing; otherwise it takes over the
// teardown and re-attaches to the same edge in the background.
func (d *Device) maybeReconnect(conn net.Conn, edgeID int, addr string, gen int) {
	d.mu.Lock()
	if d.gen != gen || d.conn != conn {
		d.mu.Unlock()
		return
	}
	d.conn, d.done = nil, nil
	d.gen++
	newGen := d.gen
	d.mu.Unlock()
	go func() {
		if err := d.dialAndServe(edgeID, addr, newGen, false); err != nil {
			// The edge is unreachable even after retries — presume it dead
			// and self-heal by re-homing to a failover candidate.
			d.failover(edgeID, newGen)
		}
	}()
}

// failover re-homes the device to the first reachable alternate edge
// after the automatic reconnect to its current edge gave up. Candidates
// are tried in configured order, skipping the dead edge; each attempt
// re-checks the generation so a deliberate Connect/Disconnect always
// wins over self-healing. With no reachable candidate (or an empty
// Failover list) the device stays stranded until the next Connect.
func (d *Device) failover(deadEdge, gen int) {
	for _, alt := range d.cfg.Failover {
		if alt.ID == deadEdge {
			continue
		}
		d.mu.Lock()
		stale := d.gen != gen
		d.mu.Unlock()
		if stale {
			return
		}
		if err := d.dialAndServe(alt.ID, alt.Addr, gen, true); err == nil {
			d.cfg.Logf("device %d: failed over from edge %d to edge %d", d.cfg.DeviceID, deadEdge, alt.ID)
			return
		}
	}
	if len(d.cfg.Failover) > 0 {
		d.cfg.Logf("device %d: stranded — edge %d down and no failover candidate reachable", d.cfg.DeviceID, deadEdge)
	}
}

// Connected reports whether the device currently has a live edge
// attachment (stranded-device accounting for daemons and tests).
func (d *Device) Connected() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conn != nil
}

// Rounds returns how many training rounds the device has served.
func (d *Device) Rounds() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rounds
}

// LocalModel returns a copy of the carried local model (nil before the
// device ever trained).
func (d *Device) LocalModel() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.local == nil {
		return nil
	}
	return append([]float64(nil), d.local...)
}

// serve handles requests on one connection until it closes. A failure
// that was not a deliberate detach (Disconnect / newer Connect) triggers
// an automatic reconnect to the same edge, resyncing state through the
// registration ack — a corrupted stream (ErrCorruptFrame) lands here
// too, so poisoned payloads are re-requested rather than aggregated.
func (d *Device) serve(conn net.Conn, edgeID int, addr string, done chan struct{}, gen int) {
	defer close(done)
	defer conn.Close()
	for {
		var req TrainRequest
		t, edgeModel, err := d.m.link.readMsg(conn, &req)
		if err != nil {
			d.maybeReconnect(conn, edgeID, addr, gen)
			return
		}
		switch t {
		case MsgShutdown:
			return
		case MsgTrainRequest:
		default:
			d.maybeReconnect(conn, edgeID, addr, gen)
			return
		}
		tr := d.cfg.Trace
		trainStart := tr.Now()
		trainTok := d.m.trainSpan.Begin()
		vec, reply, terr := d.train(req, edgeModel, edgeID)
		trainTok.End()
		if terr != nil {
			// A frame whose state is inconsistent (e.g. a moved-blend
			// length mismatch) is as untrustworthy as a corrupt one:
			// tear the stream down and resync via re-registration rather
			// than train from a stale model.
			d.m.link.corrupt.Inc()
			d.maybeReconnect(conn, edgeID, addr, gen)
			return
		}
		if tr != nil {
			spanID := ""
			if req.Span != "" { // untraced edges leave Span empty
				spanID = req.Span + ".t"
			}
			tr.Complete("device_train", "fednet", tracePidDeviceBase+d.cfg.DeviceID, 0,
				trainStart, tr.Now().Sub(trainStart), spanID, req.Span,
				map[string]any{"round": req.Round, "moved": req.Moved})
		}
		conn.SetDeadline(time.Now().Add(d.cfg.Timeout))
		if err := d.m.link.writeMsg(conn, MsgTrainReply, reply, vec); err != nil {
			d.maybeReconnect(conn, edgeID, addr, gen)
			return
		}
		conn.SetDeadline(time.Time{})
	}
}

// train executes one local round: on-device initialisation per the
// device's mode, then I SGD/Adam steps over the local shard. A non-nil
// error rejects the request's state as corrupt — the caller must tear
// the connection down and resync.
func (d *Device) train(req TrainRequest, payload []float64, edgeID int) ([]float64, TrainReply, error) {
	edgeModel := payload
	resumed := false
	if req.Resume {
		// The payload carries migrated optimizer moments after the edge
		// model; import them so local training continues the source
		// edge's trajectory instead of restarting cold.
		model, moments, lens, steps := splitMoments(payload, req.MomentLens, req.OptSteps)
		if model == nil {
			return nil, TrainReply{}, fmt.Errorf("fednet: device %d: malformed resume payload (%d values)", d.cfg.DeviceID, len(payload))
		}
		edgeModel = model
		if me, ok := d.cfg.Optimizer.(optim.MomentExporter); ok {
			resumed = me.ImportMoments(moments, lens, steps)
		}
	}
	d.mu.Lock()
	if req.ResetLocal {
		d.local = nil
	}
	if req.Moved && d.local != nil && len(d.local) != len(edgeModel) {
		// A moved device whose carried model cannot blend with the edge
		// model is in an inconsistent state; silently training from the
		// stale frame would feed a wrong-era model into Eq. 6.
		d.mu.Unlock()
		return nil, TrainReply{}, fmt.Errorf("fednet: device %d: moved-blend length mismatch (local %d, edge %d)",
			d.cfg.DeviceID, len(d.local), len(edgeModel))
	}
	start := append([]float64(nil), edgeModel...)
	if req.Moved && d.local != nil {
		switch d.cfg.Mode {
		case AggEq9:
			start, _ = simil.OnDeviceAggregate(edgeModel, d.local)
		case AggHalf:
			start = simil.Blend(edgeModel, d.local, 0.5)
		case AggKeep:
			start = append([]float64(nil), d.local...)
		}
	}
	d.mu.Unlock()

	vec, util := runLocalSGDResume(d.net, d.cfg.Optimizer, d.cfg.Dataset, d.cfg.Indices,
		d.cfg.LocalSteps, d.cfg.BatchSize, d.cfg.Seed, d.cfg.DeviceID, req.Round,
		start, d.m.nonfinite, resumed)

	d.mu.Lock()
	d.local = append([]float64(nil), vec...)
	d.prevEdge = edgeID
	d.rounds++
	d.lastUtil = util
	d.lastTrained = req.Round
	d.mu.Unlock()

	reply := TrainReply{
		DeviceID: d.cfg.DeviceID,
		Round:    req.Round,
		DataSize: len(d.cfg.Indices),
		Utility:  util,
	}
	if req.WantMoments {
		if me, ok := d.cfg.Optimizer.(optim.MomentExporter); ok {
			flat, lens, steps := me.ExportMoments()
			if len(flat) > 0 {
				vec = append(append(make([]float64, 0, len(vec)+len(flat)), vec...), flat...)
				reply.MomentLens = lens
				reply.OptSteps = steps
			}
		}
	}
	return vec, reply, nil
}

// runLocalSGD executes I local SGD steps from start over the given
// shard, returning the updated parameter vector and the device's Oort
// statistical utility. Shared by dedicated devices and the device
// multiplexer; the batch-sampling stream depends only on (seed, round,
// deviceID), so a virtual device trains bit-identically to a dedicated
// one given the same start model.
func runLocalSGD(netw *nn.Network, opt optim.Optimizer, ds *data.Dataset, indices []int,
	localSteps, batchSize int, seed int64, deviceID, round int,
	start []float64, nonfinite *obs.Counter) ([]float64, float64) {
	return runLocalSGDResume(netw, opt, ds, indices, localSteps, batchSize,
		seed, deviceID, round, start, nonfinite, false)
}

// runLocalSGDResume is runLocalSGD with an explicit resume flag: when a
// live migration just imported the optimizer's moment state, the usual
// per-round Reset is skipped so the imported moments (and step counter)
// keep steering the update — the "resumes mid-round" half of handover.
func runLocalSGDResume(netw *nn.Network, opt optim.Optimizer, ds *data.Dataset, indices []int,
	localSteps, batchSize int, seed int64, deviceID, round int,
	start []float64, nonfinite *obs.Counter, resume bool) ([]float64, float64) {
	fp := flight.BeginPhase("local_train")
	defer fp.End()
	netw.SetParamVector(start)
	if !resume {
		opt.Reset()
	}
	rng := tensor.Split(seed, int64(round)*100_003+int64(deviceID)*13+5)
	batch := batchSize
	if batch > len(indices) {
		batch = len(indices)
	}
	idx := make([]int, batch)
	sumSq, samples := 0.0, 0
	for i := 0; i < localSteps; i++ {
		for b := range idx {
			idx[b] = indices[rng.Intn(len(indices))]
		}
		x, y := ds.Batch(idx)
		netw.ZeroGrad()
		logits := netw.Forward(x, true)
		loss, g, perSample := nn.SoftmaxCrossEntropyPerSample(logits, y)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			// Diverged step: skip the update, keep the current parameters.
			nonfinite.Inc()
			continue
		}
		netw.Backward(g)
		opt.Step(netw.Params())
		for _, l := range perSample {
			sumSq += l * l
		}
		samples += len(perSample)
	}
	vec := netw.ParamVector()
	util := 0.0
	if samples > 0 {
		util = float64(len(indices)) * math.Sqrt(sumSq/float64(samples))
	}
	return vec, util
}
