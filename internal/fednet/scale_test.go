package fednet

import (
	"math"
	"testing"

	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/robust"
	"middle/internal/simil"
	"middle/internal/tensor"
)

// TestShardAggEquivalence pins the shard-merge math: for K ∈ {1, 2, 7}
// the streamed per-shard partial sums, merged by the final BLAS-1
// sweep, must agree with the gathered weighted mean to within FP
// reassociation error.
func TestShardAggEquivalence(t *testing.T) {
	rng := tensor.NewRNG(42)
	const dim, edges = 131, 11
	vecs := make([][]float64, edges)
	weights := make([]float64, edges)
	for e := range vecs {
		vecs[e] = make([]float64, dim)
		for i := range vecs[e] {
			vecs[e][i] = rng.Float64()*4 - 2
		}
		weights[e] = float64(10 + rng.Intn(90))
	}
	want := simil.WeightedAverage(vecs, weights)

	for _, k := range []int{1, 2, 7} {
		sagg := newShardAgg(k, dim)
		for e := range vecs {
			if err := sagg.add(e, vecs[e], weights[e]); err != nil {
				t.Fatalf("K=%d: add edge %d: %v", k, e, err)
			}
		}
		got := make([]float64, dim)
		if !sagg.mergeInto(got) {
			t.Fatalf("K=%d: merge reported no contributions", k)
		}
		if sagg.edges != edges {
			t.Fatalf("K=%d: folded %d edges, want %d", k, sagg.edges, edges)
		}
		for i := range want {
			if diff := math.Abs(got[i] - want[i]); diff > 1e-12*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("K=%d: coordinate %d diverges: got %v want %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestShardAggEmptyAndMismatch(t *testing.T) {
	sagg := newShardAgg(3, 4)
	dst := []float64{1, 2, 3, 4}
	if sagg.mergeInto(dst) {
		t.Fatal("empty shard aggregator claimed contributions")
	}
	if dst[0] != 1 {
		t.Fatal("empty merge touched dst")
	}
	if err := sagg.add(0, []float64{1, 2}, 5); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestShardConfigRejected pins the nonsensical-combination rejection:
// partial sums cannot express robust aggregation or screening.
func TestShardConfigRejected(t *testing.T) {
	base := CloudConfig{
		Addr: "127.0.0.1:0", Edges: 2, Rounds: 4, CloudInterval: 2,
		InitModel: []float64{0, 0}, Shards: 2,
	}
	bad := base
	bad.Aggregator = robust.AggMedian
	if _, err := NewCloud(bad); err == nil {
		t.Fatal("sharded cloud accepted a median aggregator")
	}
	bad = base
	bad.Validate = robust.ValidatorConfig{Enabled: true}
	if _, err := NewCloud(bad); err == nil {
		t.Fatal("sharded cloud accepted a validator")
	}
	c, err := NewCloud(base)
	if err != nil {
		t.Fatalf("plain sharded config rejected: %v", err)
	}
	c.ln.Close()
}

// scaleFixtureConfig builds a small end-to-end deployment config; the
// caller toggles Shards/Mux before StartCluster.
func scaleFixtureConfig(t *testing.T, mob mobility.Model, rounds int) ClusterConfig {
	t.Helper()
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 400, 5, 5)
	part := data.PartitionMajorClass(train, mob.NumDevices(), 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 16, rng),
			nn.NewReLU(),
			nn.NewLinear(16, train.Classes, rng),
		)
	}
	return ClusterConfig{
		Rounds: rounds, K: 2, LocalSteps: 2, BatchSize: 8, CloudInterval: 3,
		Strategy: core.NewMiddle(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Mobility:  mob, Seed: 1,
	}
}

// TestShardedClusterTrains runs a deployment with a 2-shard cloud and
// checks the run completes with a finite, changed global model.
func TestShardedClusterTrains(t *testing.T) {
	cfg := scaleFixtureConfig(t, mobility.NewMarkovRing(3, 9, 0.4, 7), 6)
	cfg.Shards = 2
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := c.GlobalModel()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	after := c.GlobalModel()
	changed := false
	for i := range after {
		if math.IsNaN(after[i]) || math.IsInf(after[i], 0) {
			t.Fatalf("sharded global model has non-finite coordinate %d", i)
		}
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("sharded cloud never updated the global model")
	}
}

// TestMuxClusterTrains runs the same deployment with virtual-device
// multiplexing (3 devices per client) under mobility and checks that
// training proceeds, devices participate and the virtual-device gauge
// was populated.
func TestMuxClusterTrains(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := scaleFixtureConfig(t, mobility.NewMarkovRing(3, 9, 0.4, 7), 9)
	cfg.Mux = 3
	cfg.Shards = 2
	cfg.Obs = reg
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.muxes) != 3 {
		t.Fatalf("9 devices at 3 per mux built %d multiplexers", len(c.muxes))
	}
	gauge := reg.Gauge("fednet_virtual_devices")
	if gauge.Value() <= 0 {
		t.Fatal("fednet_virtual_devices gauge never rose after attach")
	}
	before := c.GlobalModel()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	after := c.GlobalModel()
	changed := false
	for i := range after {
		if after[i] != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("mux cluster never updated the global model")
	}
	total := 0
	for _, r := range c.DeviceRounds() {
		total += r
	}
	if total == 0 || total > 9*3*2 {
		t.Fatalf("device training rounds total %d outside (0, %d]", total, 9*3*2)
	}
	if c.MoveErrors() != 0 {
		t.Fatalf("%d virtual-device migrations failed", c.MoveErrors())
	}
}

// TestMuxMoveKeepsCarriedModel exercises the mux move path directly: a
// virtual device that trained at one edge keeps its carried local model
// when the multiplexer re-registers it at another edge.
func TestMuxMoveKeepsCarriedModel(t *testing.T) {
	cfg := scaleFixtureConfig(t, mobility.NewStatic(2, 6), 6)
	cfg.Mux = 6 // all devices on one multiplexer, attached to both edges
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(c.muxes) != 1 {
		t.Fatalf("expected one multiplexer, got %d", len(c.muxes))
	}
	mx := c.muxes[0]
	trained := 0
	for id := 0; id < 6; id++ {
		if mx.DeviceRounds(id) > 0 {
			if mx.LocalModel(id) == nil {
				t.Fatalf("virtual device %d trained but carries no local model", id)
			}
			trained++
		}
	}
	if trained == 0 {
		t.Fatal("no virtual device ever trained")
	}
}
