package fednet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/robust"
	"middle/internal/tensor"
)

// ClusterConfig assembles a full in-process deployment: one cloud, E
// edges and M devices on loopback TCP, with devices migrating between
// edge servers according to a mobility model at round boundaries.
type ClusterConfig struct {
	Rounds        int
	K             int
	LocalSteps    int
	BatchSize     int
	CloudInterval int
	Strategy      hfl.Strategy
	Partition     *data.Partition
	Factory       func(rng *tensor.RNG) *nn.Network
	Optimizer     hfl.OptimizerSpec
	Mobility      mobility.Model
	Seed          int64
	Logf          func(format string, args ...any)
	// Timeout bounds every component's network operations (default 30 s;
	// chaos tests lower it so failures resolve quickly).
	Timeout time.Duration
	// Quorum and RoundDeadline configure the edges' graceful
	// degradation (see EdgeConfig).
	Quorum        int
	RoundDeadline time.Duration
	// CheckpointDir/CheckpointEvery configure cloud crash recovery (see
	// CloudConfig). EdgeCheckpoints additionally makes every edge
	// checkpoint its round state into the same directory (distinguished
	// by State.Name), enabling edge crash recovery.
	CheckpointDir   string
	CheckpointEvery int
	EdgeCheckpoints bool
	// Shards partitions edges across that many cloud aggregator shards
	// with streamed partial weighted sums (see CloudConfig.Shards); ≤ 1
	// keeps the original gather path. Requires the mean aggregator and
	// no validator.
	Shards int
	// Mux, when > 1, serves devices through multiplexers hosting that
	// many virtual devices each (one connection and goroutine per edge
	// per multiplexer, one shared model instance) instead of a dedicated
	// client per device. ≤ 1 keeps dedicated Device clients.
	Mux int
	// LiveMigration enables stateful edge-to-edge handover on mobility
	// steps: the source edge ships the moving device's cached state to
	// the destination (MsgMigrate) before the device reconnects, so it
	// resumes mid-round instead of cold-joining. Every handover failure
	// degrades to the plain drop-and-reconnect move. Off by default; the
	// disabled path is byte-for-byte today's behaviour.
	LiveMigration bool
	// MigrateTimeout bounds one handover transfer attempt independently
	// of Timeout (see EdgeConfig.MigrateTimeout; default Timeout).
	MigrateTimeout time.Duration
	// Aggregator/TrimFrac select the robust combination rule used at
	// both the edges (Eq. 6) and the cloud (Eq. 7); zero values mean the
	// bit-identical weighted mean.
	Aggregator robust.AggregatorKind
	TrimFrac   float64
	// Validate screens received models (NaN/Inf, optional norm bound) at
	// both tiers before aggregation; the zero value disables validation.
	Validate robust.ValidatorConfig
	// SelectionNormCap caps the update norm admitted into Eq. 12
	// selection scores (0 = uncapped; see EdgeConfig).
	SelectionNormCap float64
	// Faults, when non-nil, builds one shared fault injector for the
	// whole deployment; its errors are tolerated by Wait. Enabling
	// faults also switches the cloud to degraded mode (MinEdges 1).
	Faults *FaultConfig
	// Membership, when Enabled, runs the cloud in self-healing membership
	// mode: edges hold leases, a missed-lease detector declares dead
	// edges, and the cluster re-homes a dead edge's devices to the
	// surviving edges (warm, carrying their local state) instead of
	// leaving them stranded. Killed edges may later RestartEdge and
	// rejoin under a bumped membership epoch. Disabled (the default)
	// keeps the fixed-membership behaviour bit-identical.
	Membership MembershipConfig
	// DeviceLeaseRounds forwards to EdgeConfig.DeviceLeaseRounds (device
	// tier of the failure detector); 0 disables eviction.
	DeviceLeaseRounds int
	// Obs, when set, is threaded into every component so one registry
	// reports the whole deployment's fednet_* series.
	Obs *obs.Registry
	// Trace, when set, is threaded into every component so one collector
	// holds the full device→edge→cloud span tree of every round.
	Trace *obs.Trace
}

// deviceHandle is a cluster-side handle on one (possibly virtual)
// device: dedicated Device clients implement it directly, virtual
// devices through their DeviceMux.
type deviceHandle interface {
	Connect(edgeID int, addr string) error
	Disconnect()
	Rounds() int
}

// rehomer is the optional warm re-home capability of a device handle.
// Dedicated Device clients implement it; virtual mux devices fall back
// to a plain (cold) Connect when their edge dies.
type rehomer interface {
	ConnectRehome(edgeID int, addr string) error
}

// muxHandle adapts one virtual device of a DeviceMux to deviceHandle.
type muxHandle struct {
	mx *DeviceMux
	id int
}

func (h muxHandle) Connect(edgeID int, addr string) error { return h.mx.Connect(h.id, edgeID, addr) }
func (h muxHandle) Disconnect()                           {} // the mux tears its shared connections down once
func (h muxHandle) Rounds() int                           { return h.mx.DeviceRounds(h.id) }

// Cluster is a running deployment.
type Cluster struct {
	cloud    *Cloud
	edges    []*Edge
	edgeCfgs []EdgeConfig // templates for RestartEdge
	devices  []deviceHandle
	muxes    []*DeviceMux
	injector *FaultInjector
	faulty   bool // fault injection enabled: edge failures are expected
	logf     func(format string, args ...any)
	seed     int64

	wg        sync.WaitGroup
	mu        sync.Mutex
	errs      []error
	tolerated []error
	moveErrs  int
	// assign is the current device→edge attachment (mobility plus any
	// failover re-homing); downEdges marks edges declared dead by the
	// cloud's failure detector. failovers/rehomed tally edge failovers
	// and warm device re-homes for run summaries.
	assign    []int
	downEdges map[int]bool
	failovers int
	rehomed   int
	// failoverSpan observes fednet_failover_seconds: edge declared dead →
	// all its devices re-homed.
	failoverSpan *obs.Span
	strandedG    *obs.Gauge
	// migGen counts each device's moves (the handover generation): a
	// destination edge rejects records whose generation it has already
	// seen, so a delayed retry of an older move cannot overwrite a newer
	// one. stranded tracks devices whose move exhausted its retries and
	// who are therefore detached until their next mobility step.
	migGen   map[int]int
	stranded map[int]bool
	// Handover outcome tallies mirroring fednet_migrations_total, kept
	// on the cluster so summaries stay truthful with metrics disabled.
	migOK, migFallback, migRejected int
}

// StartCluster builds and starts the deployment. The mobility model's
// device count must match the partition's. The call returns once all
// components are connected and the first round is about to start; use
// Wait to block until training completes.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Partition.NumDevices() != cfg.Mobility.NumDevices() {
		return nil, fmt.Errorf("fednet: partition has %d devices, mobility %d", cfg.Partition.NumDevices(), cfg.Mobility.NumDevices())
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	numEdges := cfg.Mobility.NumEdges()
	numDevices := cfg.Mobility.NumDevices()
	c := &Cluster{
		migGen: map[int]int{}, stranded: map[int]bool{},
		downEdges: map[int]bool{},
		logf:      cfg.Logf, seed: cfg.Seed,
		failoverSpan: cfg.Obs.Span("fednet_failover_seconds"),
		strandedG:    cfg.Obs.Gauge("fednet_stranded_devices"),
	}
	if cfg.Faults != nil {
		fc := *cfg.Faults
		if fc.Obs == nil {
			fc.Obs = cfg.Obs
		}
		c.injector = NewFaultInjector(fc)
		c.faulty = true
	}

	init := cfg.Factory(tensor.Split(cfg.Seed, 0)).ParamVector()
	cfg.Mobility.Reset()
	membership := cfg.Mobility.Step()
	c.assign = append([]int(nil), membership...)

	// Device migration at round boundaries, driven by the cloud. With
	// LiveMigration the source edge first ships the device's cached state
	// to the destination (every handover failure simply degrades to the
	// plain drop-and-reconnect below); the reconnect itself is retried
	// with the standard capped backoff, and only a device whose move
	// exhausted every retry is counted stranded — it stays detached until
	// its next mobility step re-attempts a connection.
	moveErrCtr := cfg.Obs.Counter("fednet_move_errors_total")
	moveRetryCtr := cfg.Obs.Counter("fednet_move_retries_total")
	onRound := func(round int) {
		next := append([]int(nil), cfg.Mobility.Step()...)
		for m, e := range next {
			// A mobility step may target an edge the failure detector has
			// declared dead; redirect the move deterministically to a
			// survivor instead of dialing a corpse.
			e = c.liveTarget(m, e)
			next[m] = e
			if e == membership[m] {
				continue
			}
			src := membership[m]
			if cfg.LiveMigration && src >= 0 && src < len(c.edges) && !c.edgeDown(src) {
				c.mu.Lock()
				c.migGen[m]++
				gen := c.migGen[m]
				srcEdge, dstAddr := c.edges[src], c.edges[e].Addr()
				c.mu.Unlock()
				out := srcEdge.MigrateOut(m, e, dstAddr, gen)
				c.mu.Lock()
				switch out {
				case "ok":
					c.migOK++
				case "fallback":
					c.migFallback++
				case "rejected":
					c.migRejected++
				}
				c.mu.Unlock()
			}
			var err error
			for attempt := 0; attempt <= defaultMaxRetries; attempt++ {
				if attempt > 0 {
					moveRetryCtr.Inc()
					time.Sleep(retryBackoff(0, attempt, cfg.Seed, int64(m)*1_000_003+int64(e)*17+int64(round)))
				}
				if err = c.devices[m].Connect(e, c.edgeAt(e).Addr()); err == nil {
					break
				}
			}
			c.mu.Lock()
			if err != nil {
				c.moveErrs++
				c.stranded[m] = true
			} else {
				c.assign[m] = e
				delete(c.stranded, m)
			}
			c.strandedG.Set(float64(len(c.stranded)))
			c.mu.Unlock()
			if err != nil {
				cfg.Logf("cluster: device %d failed to move to edge %d (stranded until next move): %v", m, e, err)
				moveErrCtr.Inc()
			}
		}
		membership = next
	}

	minEdges := 0
	if c.faulty {
		// Under injected faults an edge may legitimately die mid-run;
		// degrade gracefully as long as one edge survives.
		minEdges = 1
	}
	ccfg := CloudConfig{
		Addr: "127.0.0.1:0", Edges: numEdges, Rounds: cfg.Rounds,
		CloudInterval: cfg.CloudInterval, InitModel: init,
		Timeout: cfg.Timeout, MinEdges: minEdges, Shards: cfg.Shards,
		CheckpointDir: cfg.CheckpointDir, CheckpointEvery: cfg.CheckpointEvery,
		Aggregator: cfg.Aggregator, TrimFrac: cfg.TrimFrac, Validate: cfg.Validate,
		Logf: cfg.Logf, OnRound: onRound, Obs: cfg.Obs, Trace: cfg.Trace,
	}
	if cfg.Membership.Enabled {
		ccfg.Membership = cfg.Membership
		ccfg.OnEdgeDown = c.onEdgeDown
		ccfg.OnEdgeUp = c.onEdgeUp
	}
	cloud, err := NewCloud(ccfg)
	if err != nil {
		return nil, err
	}
	c.cloud = cloud

	for e := 0; e < numEdges; e++ {
		edgeCkptDir := ""
		if cfg.EdgeCheckpoints {
			edgeCkptDir = cfg.CheckpointDir
		}
		ecfg := EdgeConfig{
			EdgeID: e, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0",
			K: cfg.K, Strategy: cfg.Strategy, Seed: cfg.Seed, Logf: cfg.Logf,
			Timeout: cfg.Timeout, Quorum: cfg.Quorum, RoundDeadline: cfg.RoundDeadline,
			Aggregator: cfg.Aggregator, TrimFrac: cfg.TrimFrac, Validate: cfg.Validate,
			SelectionNormCap:  cfg.SelectionNormCap,
			LiveMigration:     cfg.LiveMigration,
			MigrateTimeout:    cfg.MigrateTimeout,
			DeviceLeaseRounds: cfg.DeviceLeaseRounds,
			CheckpointDir:     edgeCkptDir, CheckpointEvery: cfg.CheckpointEvery,
			Faults: c.injector, Obs: cfg.Obs, Trace: cfg.Trace,
		}
		edge, err := NewEdge(ecfg)
		if err != nil {
			return nil, err
		}
		c.edges = append(c.edges, edge)
		c.edgeCfgs = append(c.edgeCfgs, ecfg)
	}
	mode := AggModeForStrategy(cfg.Strategy.Name())
	if cfg.Mux > 1 {
		// Virtual-device multiplexing: one client process per Mux-sized
		// group instead of one per device.
		for lo := 0; lo < numDevices; lo += cfg.Mux {
			hi := lo + cfg.Mux
			if hi > numDevices {
				hi = numDevices
			}
			group := make([]MuxDevice, 0, hi-lo)
			for m := lo; m < hi; m++ {
				group = append(group, MuxDevice{DeviceID: m, Indices: cfg.Partition.Indices[m]})
			}
			mx, err := NewDeviceMux(DeviceMuxConfig{
				Devices: group, Dataset: cfg.Partition.Dataset,
				Factory: cfg.Factory, Optimizer: cfg.Optimizer.New(),
				LocalSteps: cfg.LocalSteps, BatchSize: cfg.BatchSize,
				Mode: mode, Seed: cfg.Seed, Timeout: cfg.Timeout,
				Faults: c.injector, Obs: cfg.Obs,
			})
			if err != nil {
				return nil, err
			}
			c.muxes = append(c.muxes, mx)
			for m := lo; m < hi; m++ {
				c.devices = append(c.devices, muxHandle{mx: mx, id: m})
			}
		}
	} else {
		for m := 0; m < numDevices; m++ {
			dev, err := NewDevice(DeviceConfig{
				DeviceID:   m,
				Dataset:    cfg.Partition.Dataset,
				Indices:    cfg.Partition.Indices[m],
				Factory:    cfg.Factory,
				Optimizer:  cfg.Optimizer.New(),
				LocalSteps: cfg.LocalSteps, BatchSize: cfg.BatchSize,
				Mode: mode, Seed: cfg.Seed, Timeout: cfg.Timeout,
				Logf:   cfg.Logf,
				Faults: c.injector, Obs: cfg.Obs, Trace: cfg.Trace,
			})
			if err != nil {
				return nil, err
			}
			c.devices = append(c.devices, dev)
		}
	}

	// Launch servers.
	c.wg.Add(1 + numEdges)
	go func() {
		defer c.wg.Done()
		if err := cloud.Run(); err != nil {
			// Cloud errors are always real: they mean the run itself
			// failed (even under injection, losing the coordinator or
			// dropping below MinEdges is not graceful degradation).
			c.recordErr(fmt.Errorf("cloud: %w", err), false)
		}
	}()
	for _, e := range c.edges {
		go func(e *Edge) {
			defer c.wg.Done()
			if err := e.Run(); err != nil {
				// Edge failures are expected casualties when faults are
				// being injected (the cloud degrades around them) or when
				// this incarnation was deliberately killed for a chaos
				// scenario; injected errors are tolerated regardless.
				tolerated := c.faulty || errors.Is(err, ErrInjected) || e.Killed()
				c.recordErr(fmt.Errorf("edge %d: %w", e.cfg.EdgeID, err), tolerated)
			}
		}(e)
	}

	// Attach devices at their initial edges.
	for m, e := range membership {
		if err := c.devices[m].Connect(e, c.edges[e].Addr()); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// edgeAt returns the current *Edge for slot i (RestartEdge replaces
// slice elements, so unguarded indexing would race).
func (c *Cluster) edgeAt(i int) *Edge {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.edges[i]
}

// edgeDown reports whether the failure detector currently considers
// edge e dead.
func (c *Cluster) edgeDown(e int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downEdges[e]
}

// liveTarget redirects an intended attachment target away from edges
// currently declared dead, picking a survivor deterministically by
// device id. With no dead edges (the default) it is the identity.
func (c *Cluster) liveTarget(m, e int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.downEdges[e] {
		return e
	}
	var survivors []int
	for i := range c.edges {
		if !c.downEdges[i] {
			survivors = append(survivors, i)
		}
	}
	if len(survivors) == 0 {
		return e
	}
	return survivors[m%len(survivors)]
}

// onEdgeDown is the cloud failure detector's callback (membership mode):
// re-home every device attached to the dead edge onto the survivors —
// warm where the handle supports it, carrying the device's own local
// model and bookkeeping — so no device stays stranded past the failover.
// Runs in its own goroutine, spawned by the cloud.
func (c *Cluster) onEdgeDown(dead int) {
	start := time.Now()
	c.mu.Lock()
	c.downEdges[dead] = true
	c.failovers++
	var victims []int
	for m, e := range c.assign {
		if e == dead {
			victims = append(victims, m)
		}
	}
	c.mu.Unlock()
	c.logf("cluster: edge %d declared dead — re-homing %d devices", dead, len(victims))
	for _, m := range victims {
		target := c.liveTarget(m, dead)
		if target == dead {
			// No survivors at all; the devices stay stranded until an
			// edge rejoins and mobility re-attaches them.
			c.mu.Lock()
			c.stranded[m] = true
			c.strandedG.Set(float64(len(c.stranded)))
			c.mu.Unlock()
			continue
		}
		var err error
		for attempt := 0; attempt <= defaultMaxRetries; attempt++ {
			if attempt > 0 {
				time.Sleep(retryBackoff(0, attempt, c.seed, int64(m)*1_000_003+int64(target)*17+911))
			}
			addr := c.edgeAt(target).Addr()
			if rh, ok := c.devices[m].(rehomer); ok {
				err = rh.ConnectRehome(target, addr)
			} else {
				err = c.devices[m].Connect(target, addr)
			}
			if err == nil {
				break
			}
		}
		c.mu.Lock()
		if err != nil {
			c.stranded[m] = true
		} else {
			c.assign[m] = target
			c.rehomed++
			delete(c.stranded, m)
		}
		c.strandedG.Set(float64(len(c.stranded)))
		c.mu.Unlock()
		if err != nil {
			c.logf("cluster: device %d failed to re-home off dead edge %d: %v", m, dead, err)
		} else {
			c.logf("cluster: device %d re-homed to edge %d after edge %d died", m, target, dead)
		}
	}
	c.failoverSpan.Observe(time.Since(start))
}

// onEdgeUp is the cloud's rejoin callback: the edge is back in the
// membership (bumped epoch) and eligible as a move target again.
func (c *Cluster) onEdgeUp(e int) {
	c.mu.Lock()
	delete(c.downEdges, e)
	c.mu.Unlock()
	c.logf("cluster: edge %d back in membership", e)
}

// KillEdge abruptly tears edge e down — listener, cloud link, and device
// connections all close with no drain or checkpoint, the in-process
// equivalent of SIGKILL. In membership mode the cloud's failure detector
// notices the missed leases, declares the edge dead, and the cluster
// re-homes its devices; the edge's Run error is recorded as a tolerated
// casualty, not a run failure.
func (c *Cluster) KillEdge(e int) {
	c.edgeAt(e).Kill()
}

// RestartEdge brings a previously killed edge back (membership mode): a
// fresh Edge on a new listener address re-registers with the cloud,
// which readmits it under a bumped membership epoch and serves it the
// current global model for catch-up; with EdgeCheckpoints enabled the
// new process also restores its round state from its named checkpoint
// first. The restarted edge becomes a mobility target again once the
// cloud's rejoin callback fires.
func (c *Cluster) RestartEdge(e int) error {
	c.mu.Lock()
	ecfg := c.edgeCfgs[e]
	c.mu.Unlock()
	ecfg.Addr = "127.0.0.1:0"
	edge, err := NewEdge(ecfg)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.edges[e] = edge
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if err := edge.Run(); err != nil {
			tolerated := c.faulty || errors.Is(err, ErrInjected) || edge.Killed()
			c.recordErr(fmt.Errorf("edge %d: %w", e, err), tolerated)
		}
	}()
	return nil
}

// Stop asks the cloud for a graceful stop at the next round boundary
// (final checkpoint included). Use Wait to collect the shutdown.
func (c *Cluster) Stop() { c.cloud.Stop() }

func (c *Cluster) recordErr(err error, tolerated bool) {
	c.mu.Lock()
	if tolerated {
		c.tolerated = append(c.tolerated, err)
	} else {
		c.errs = append(c.errs, err)
	}
	c.mu.Unlock()
}

// Wait blocks until the cloud and all edges terminate, disconnects the
// devices, and returns the first real component error (nil on success).
// Injected/expected fault casualties are not surfaced as errors — they
// are counted and available through ToleratedFaults.
func (c *Cluster) Wait() error {
	c.wg.Wait()
	for _, d := range c.devices {
		d.Disconnect()
	}
	for _, mx := range c.muxes {
		mx.Disconnect()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

// ToleratedFaults reports how many component failures were classified
// as injected/expected and absorbed rather than surfaced by Wait.
func (c *Cluster) ToleratedFaults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tolerated)
}

// GlobalModel returns the cloud's current global model.
func (c *Cluster) GlobalModel() []float64 { return c.cloud.GlobalModel() }

// DeviceRounds returns how many rounds each device trained (diagnostics).
func (c *Cluster) DeviceRounds() []int {
	out := make([]int, len(c.devices))
	for i, d := range c.devices {
		out[i] = d.Rounds()
	}
	return out
}

// MoveErrors reports how many device migrations failed.
func (c *Cluster) MoveErrors() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.moveErrs
}

// Migrations reports the live-handover outcome tallies (the counts
// behind fednet_migrations_total): completed transfers, failures that
// degraded to drop-and-reconnect, and destination rejections. All zero
// when LiveMigration is off.
func (c *Cluster) Migrations() (ok, fallback, rejected int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migOK, c.migFallback, c.migRejected
}

// Failovers reports how many edge-death failovers the cluster handled
// (the count behind fednet_edge_failovers_total).
func (c *Cluster) Failovers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers
}

// Rehomed reports how many devices were successfully re-homed off dead
// edges (the cluster-side view of fednet_rehomed_devices_total).
func (c *Cluster) Rehomed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rehomed
}

// MembershipEpoch returns the cloud's current membership epoch (0 when
// membership mode is off).
func (c *Cluster) MembershipEpoch() int { return c.cloud.Epoch() }

// DownEdges lists edges currently declared dead by the failure detector
// (sorted ascending; empty outside membership mode).
func (c *Cluster) DownEdges() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.downEdges))
	for e := range c.downEdges {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// Stranded returns the devices currently detached because their last
// move exhausted every reconnect retry (sorted ascending). They remain
// stranded until a later mobility step re-attaches them.
func (c *Cluster) Stranded() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.stranded))
	for m := range c.stranded {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}
