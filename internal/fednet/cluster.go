package fednet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/robust"
	"middle/internal/tensor"
)

// ClusterConfig assembles a full in-process deployment: one cloud, E
// edges and M devices on loopback TCP, with devices migrating between
// edge servers according to a mobility model at round boundaries.
type ClusterConfig struct {
	Rounds        int
	K             int
	LocalSteps    int
	BatchSize     int
	CloudInterval int
	Strategy      hfl.Strategy
	Partition     *data.Partition
	Factory       func(rng *tensor.RNG) *nn.Network
	Optimizer     hfl.OptimizerSpec
	Mobility      mobility.Model
	Seed          int64
	Logf          func(format string, args ...any)
	// Timeout bounds every component's network operations (default 30 s;
	// chaos tests lower it so failures resolve quickly).
	Timeout time.Duration
	// Quorum and RoundDeadline configure the edges' graceful
	// degradation (see EdgeConfig).
	Quorum        int
	RoundDeadline time.Duration
	// CheckpointDir/CheckpointEvery configure cloud crash recovery (see
	// CloudConfig). EdgeCheckpoints additionally makes every edge
	// checkpoint its round state into the same directory (distinguished
	// by State.Name), enabling edge crash recovery.
	CheckpointDir   string
	CheckpointEvery int
	EdgeCheckpoints bool
	// Shards partitions edges across that many cloud aggregator shards
	// with streamed partial weighted sums (see CloudConfig.Shards); ≤ 1
	// keeps the original gather path. Requires the mean aggregator and
	// no validator.
	Shards int
	// Mux, when > 1, serves devices through multiplexers hosting that
	// many virtual devices each (one connection and goroutine per edge
	// per multiplexer, one shared model instance) instead of a dedicated
	// client per device. ≤ 1 keeps dedicated Device clients.
	Mux int
	// LiveMigration enables stateful edge-to-edge handover on mobility
	// steps: the source edge ships the moving device's cached state to
	// the destination (MsgMigrate) before the device reconnects, so it
	// resumes mid-round instead of cold-joining. Every handover failure
	// degrades to the plain drop-and-reconnect move. Off by default; the
	// disabled path is byte-for-byte today's behaviour.
	LiveMigration bool
	// MigrateTimeout bounds one handover transfer attempt independently
	// of Timeout (see EdgeConfig.MigrateTimeout; default Timeout).
	MigrateTimeout time.Duration
	// Aggregator/TrimFrac select the robust combination rule used at
	// both the edges (Eq. 6) and the cloud (Eq. 7); zero values mean the
	// bit-identical weighted mean.
	Aggregator robust.AggregatorKind
	TrimFrac   float64
	// Validate screens received models (NaN/Inf, optional norm bound) at
	// both tiers before aggregation; the zero value disables validation.
	Validate robust.ValidatorConfig
	// SelectionNormCap caps the update norm admitted into Eq. 12
	// selection scores (0 = uncapped; see EdgeConfig).
	SelectionNormCap float64
	// Faults, when non-nil, builds one shared fault injector for the
	// whole deployment; its errors are tolerated by Wait. Enabling
	// faults also switches the cloud to degraded mode (MinEdges 1).
	Faults *FaultConfig
	// Obs, when set, is threaded into every component so one registry
	// reports the whole deployment's fednet_* series.
	Obs *obs.Registry
	// Trace, when set, is threaded into every component so one collector
	// holds the full device→edge→cloud span tree of every round.
	Trace *obs.Trace
}

// deviceHandle is a cluster-side handle on one (possibly virtual)
// device: dedicated Device clients implement it directly, virtual
// devices through their DeviceMux.
type deviceHandle interface {
	Connect(edgeID int, addr string) error
	Disconnect()
	Rounds() int
}

// muxHandle adapts one virtual device of a DeviceMux to deviceHandle.
type muxHandle struct {
	mx *DeviceMux
	id int
}

func (h muxHandle) Connect(edgeID int, addr string) error { return h.mx.Connect(h.id, edgeID, addr) }
func (h muxHandle) Disconnect()                           {} // the mux tears its shared connections down once
func (h muxHandle) Rounds() int                           { return h.mx.DeviceRounds(h.id) }

// Cluster is a running deployment.
type Cluster struct {
	cloud    *Cloud
	edges    []*Edge
	devices  []deviceHandle
	muxes    []*DeviceMux
	injector *FaultInjector
	faulty   bool // fault injection enabled: edge failures are expected

	wg        sync.WaitGroup
	mu        sync.Mutex
	errs      []error
	tolerated []error
	moveErrs  int
	// migGen counts each device's moves (the handover generation): a
	// destination edge rejects records whose generation it has already
	// seen, so a delayed retry of an older move cannot overwrite a newer
	// one. stranded tracks devices whose move exhausted its retries and
	// who are therefore detached until their next mobility step.
	migGen   map[int]int
	stranded map[int]bool
	// Handover outcome tallies mirroring fednet_migrations_total, kept
	// on the cluster so summaries stay truthful with metrics disabled.
	migOK, migFallback, migRejected int
}

// StartCluster builds and starts the deployment. The mobility model's
// device count must match the partition's. The call returns once all
// components are connected and the first round is about to start; use
// Wait to block until training completes.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Partition.NumDevices() != cfg.Mobility.NumDevices() {
		return nil, fmt.Errorf("fednet: partition has %d devices, mobility %d", cfg.Partition.NumDevices(), cfg.Mobility.NumDevices())
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	numEdges := cfg.Mobility.NumEdges()
	numDevices := cfg.Mobility.NumDevices()
	c := &Cluster{migGen: map[int]int{}, stranded: map[int]bool{}}
	if cfg.Faults != nil {
		fc := *cfg.Faults
		if fc.Obs == nil {
			fc.Obs = cfg.Obs
		}
		c.injector = NewFaultInjector(fc)
		c.faulty = true
	}

	init := cfg.Factory(tensor.Split(cfg.Seed, 0)).ParamVector()
	cfg.Mobility.Reset()
	membership := cfg.Mobility.Step()

	// Device migration at round boundaries, driven by the cloud. With
	// LiveMigration the source edge first ships the device's cached state
	// to the destination (every handover failure simply degrades to the
	// plain drop-and-reconnect below); the reconnect itself is retried
	// with the standard capped backoff, and only a device whose move
	// exhausted every retry is counted stranded — it stays detached until
	// its next mobility step re-attempts a connection.
	moveErrCtr := cfg.Obs.Counter("fednet_move_errors_total")
	moveRetryCtr := cfg.Obs.Counter("fednet_move_retries_total")
	strandedGauge := cfg.Obs.Gauge("fednet_stranded_devices")
	onRound := func(round int) {
		next := cfg.Mobility.Step()
		for m, e := range next {
			if e == membership[m] {
				continue
			}
			if src := membership[m]; cfg.LiveMigration && src >= 0 && src < len(c.edges) {
				c.mu.Lock()
				c.migGen[m]++
				gen := c.migGen[m]
				c.mu.Unlock()
				out := c.edges[src].MigrateOut(m, e, c.edges[e].Addr(), gen)
				c.mu.Lock()
				switch out {
				case "ok":
					c.migOK++
				case "fallback":
					c.migFallback++
				case "rejected":
					c.migRejected++
				}
				c.mu.Unlock()
			}
			var err error
			for attempt := 0; attempt <= defaultMaxRetries; attempt++ {
				if attempt > 0 {
					moveRetryCtr.Inc()
					time.Sleep(retryBackoff(0, attempt, cfg.Seed, int64(m)*1_000_003+int64(e)*17+int64(round)))
				}
				if err = c.devices[m].Connect(e, c.edges[e].Addr()); err == nil {
					break
				}
			}
			c.mu.Lock()
			if err != nil {
				c.moveErrs++
				c.stranded[m] = true
			} else {
				delete(c.stranded, m)
			}
			strandedGauge.Set(float64(len(c.stranded)))
			c.mu.Unlock()
			if err != nil {
				cfg.Logf("cluster: device %d failed to move to edge %d (stranded until next move): %v", m, e, err)
				moveErrCtr.Inc()
			}
		}
		membership = next
	}

	minEdges := 0
	if c.faulty {
		// Under injected faults an edge may legitimately die mid-run;
		// degrade gracefully as long as one edge survives.
		minEdges = 1
	}
	cloud, err := NewCloud(CloudConfig{
		Addr: "127.0.0.1:0", Edges: numEdges, Rounds: cfg.Rounds,
		CloudInterval: cfg.CloudInterval, InitModel: init,
		Timeout: cfg.Timeout, MinEdges: minEdges, Shards: cfg.Shards,
		CheckpointDir: cfg.CheckpointDir, CheckpointEvery: cfg.CheckpointEvery,
		Aggregator: cfg.Aggregator, TrimFrac: cfg.TrimFrac, Validate: cfg.Validate,
		Logf: cfg.Logf, OnRound: onRound, Obs: cfg.Obs, Trace: cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	c.cloud = cloud

	for e := 0; e < numEdges; e++ {
		edgeCkptDir := ""
		if cfg.EdgeCheckpoints {
			edgeCkptDir = cfg.CheckpointDir
		}
		edge, err := NewEdge(EdgeConfig{
			EdgeID: e, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0",
			K: cfg.K, Strategy: cfg.Strategy, Seed: cfg.Seed, Logf: cfg.Logf,
			Timeout: cfg.Timeout, Quorum: cfg.Quorum, RoundDeadline: cfg.RoundDeadline,
			Aggregator: cfg.Aggregator, TrimFrac: cfg.TrimFrac, Validate: cfg.Validate,
			SelectionNormCap: cfg.SelectionNormCap,
			LiveMigration:    cfg.LiveMigration,
			MigrateTimeout:   cfg.MigrateTimeout,
			CheckpointDir:    edgeCkptDir, CheckpointEvery: cfg.CheckpointEvery,
			Faults: c.injector, Obs: cfg.Obs, Trace: cfg.Trace,
		})
		if err != nil {
			return nil, err
		}
		c.edges = append(c.edges, edge)
	}
	mode := AggModeForStrategy(cfg.Strategy.Name())
	if cfg.Mux > 1 {
		// Virtual-device multiplexing: one client process per Mux-sized
		// group instead of one per device.
		for lo := 0; lo < numDevices; lo += cfg.Mux {
			hi := lo + cfg.Mux
			if hi > numDevices {
				hi = numDevices
			}
			group := make([]MuxDevice, 0, hi-lo)
			for m := lo; m < hi; m++ {
				group = append(group, MuxDevice{DeviceID: m, Indices: cfg.Partition.Indices[m]})
			}
			mx, err := NewDeviceMux(DeviceMuxConfig{
				Devices: group, Dataset: cfg.Partition.Dataset,
				Factory: cfg.Factory, Optimizer: cfg.Optimizer.New(),
				LocalSteps: cfg.LocalSteps, BatchSize: cfg.BatchSize,
				Mode: mode, Seed: cfg.Seed, Timeout: cfg.Timeout,
				Faults: c.injector, Obs: cfg.Obs,
			})
			if err != nil {
				return nil, err
			}
			c.muxes = append(c.muxes, mx)
			for m := lo; m < hi; m++ {
				c.devices = append(c.devices, muxHandle{mx: mx, id: m})
			}
		}
	} else {
		for m := 0; m < numDevices; m++ {
			dev, err := NewDevice(DeviceConfig{
				DeviceID:   m,
				Dataset:    cfg.Partition.Dataset,
				Indices:    cfg.Partition.Indices[m],
				Factory:    cfg.Factory,
				Optimizer:  cfg.Optimizer.New(),
				LocalSteps: cfg.LocalSteps, BatchSize: cfg.BatchSize,
				Mode: mode, Seed: cfg.Seed, Timeout: cfg.Timeout,
				Faults: c.injector, Obs: cfg.Obs, Trace: cfg.Trace,
			})
			if err != nil {
				return nil, err
			}
			c.devices = append(c.devices, dev)
		}
	}

	// Launch servers.
	c.wg.Add(1 + numEdges)
	go func() {
		defer c.wg.Done()
		if err := cloud.Run(); err != nil {
			// Cloud errors are always real: they mean the run itself
			// failed (even under injection, losing the coordinator or
			// dropping below MinEdges is not graceful degradation).
			c.recordErr(fmt.Errorf("cloud: %w", err), false)
		}
	}()
	for _, e := range c.edges {
		go func(e *Edge) {
			defer c.wg.Done()
			if err := e.Run(); err != nil {
				// Edge failures are expected casualties when faults are
				// being injected (the cloud degrades around them);
				// explicitly injected errors are tolerated regardless.
				tolerated := c.faulty || errors.Is(err, ErrInjected)
				c.recordErr(fmt.Errorf("edge %d: %w", e.cfg.EdgeID, err), tolerated)
			}
		}(e)
	}

	// Attach devices at their initial edges.
	for m, e := range membership {
		if err := c.devices[m].Connect(e, c.edges[e].Addr()); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) recordErr(err error, tolerated bool) {
	c.mu.Lock()
	if tolerated {
		c.tolerated = append(c.tolerated, err)
	} else {
		c.errs = append(c.errs, err)
	}
	c.mu.Unlock()
}

// Wait blocks until the cloud and all edges terminate, disconnects the
// devices, and returns the first real component error (nil on success).
// Injected/expected fault casualties are not surfaced as errors — they
// are counted and available through ToleratedFaults.
func (c *Cluster) Wait() error {
	c.wg.Wait()
	for _, d := range c.devices {
		d.Disconnect()
	}
	for _, mx := range c.muxes {
		mx.Disconnect()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

// ToleratedFaults reports how many component failures were classified
// as injected/expected and absorbed rather than surfaced by Wait.
func (c *Cluster) ToleratedFaults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tolerated)
}

// GlobalModel returns the cloud's current global model.
func (c *Cluster) GlobalModel() []float64 { return c.cloud.GlobalModel() }

// DeviceRounds returns how many rounds each device trained (diagnostics).
func (c *Cluster) DeviceRounds() []int {
	out := make([]int, len(c.devices))
	for i, d := range c.devices {
		out[i] = d.Rounds()
	}
	return out
}

// MoveErrors reports how many device migrations failed.
func (c *Cluster) MoveErrors() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.moveErrs
}

// Migrations reports the live-handover outcome tallies (the counts
// behind fednet_migrations_total): completed transfers, failures that
// degraded to drop-and-reconnect, and destination rejections. All zero
// when LiveMigration is off.
func (c *Cluster) Migrations() (ok, fallback, rejected int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migOK, c.migFallback, c.migRejected
}

// Stranded returns the devices currently detached because their last
// move exhausted every reconnect retry (sorted ascending). They remain
// stranded until a later mobility step re-attaches them.
func (c *Cluster) Stranded() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.stranded))
	for m := range c.stranded {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}
