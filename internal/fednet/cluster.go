package fednet

import (
	"fmt"
	"sync"

	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/tensor"
)

// ClusterConfig assembles a full in-process deployment: one cloud, E
// edges and M devices on loopback TCP, with devices migrating between
// edge servers according to a mobility model at round boundaries.
type ClusterConfig struct {
	Rounds        int
	K             int
	LocalSteps    int
	BatchSize     int
	CloudInterval int
	Strategy      hfl.Strategy
	Partition     *data.Partition
	Factory       func(rng *tensor.RNG) *nn.Network
	Optimizer     hfl.OptimizerSpec
	Mobility      mobility.Model
	Seed          int64
	Logf          func(format string, args ...any)
	// Obs, when set, is threaded into every component so one registry
	// reports the whole deployment's fednet_* series.
	Obs *obs.Registry
	// Trace, when set, is threaded into every component so one collector
	// holds the full device→edge→cloud span tree of every round.
	Trace *obs.Trace
}

// Cluster is a running deployment.
type Cluster struct {
	cloud   *Cloud
	edges   []*Edge
	devices []*Device

	wg       sync.WaitGroup
	mu       sync.Mutex
	errs     []error
	moveErrs int
}

// StartCluster builds and starts the deployment. The mobility model's
// device count must match the partition's. The call returns once all
// components are connected and the first round is about to start; use
// Wait to block until training completes.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Partition.NumDevices() != cfg.Mobility.NumDevices() {
		return nil, fmt.Errorf("fednet: partition has %d devices, mobility %d", cfg.Partition.NumDevices(), cfg.Mobility.NumDevices())
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	numEdges := cfg.Mobility.NumEdges()
	numDevices := cfg.Mobility.NumDevices()
	c := &Cluster{}

	init := cfg.Factory(tensor.Split(cfg.Seed, 0)).ParamVector()
	cfg.Mobility.Reset()
	membership := cfg.Mobility.Step()

	// Device migration at round boundaries, driven by the cloud.
	onRound := func(round int) {
		next := cfg.Mobility.Step()
		for m, e := range next {
			if e == membership[m] {
				continue
			}
			if err := c.devices[m].Connect(e, c.edges[e].Addr()); err != nil {
				cfg.Logf("cluster: device %d failed to move to edge %d: %v", m, e, err)
				cfg.Obs.Counter("fednet_move_errors_total").Inc()
				c.mu.Lock()
				c.moveErrs++
				c.mu.Unlock()
			}
		}
		membership = next
	}

	cloud, err := NewCloud(CloudConfig{
		Addr: "127.0.0.1:0", Edges: numEdges, Rounds: cfg.Rounds,
		CloudInterval: cfg.CloudInterval, InitModel: init,
		Logf: cfg.Logf, OnRound: onRound, Obs: cfg.Obs, Trace: cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	c.cloud = cloud

	for e := 0; e < numEdges; e++ {
		edge, err := NewEdge(EdgeConfig{
			EdgeID: e, CloudAddr: cloud.Addr(), Addr: "127.0.0.1:0",
			K: cfg.K, Strategy: cfg.Strategy, Seed: cfg.Seed, Logf: cfg.Logf,
			Obs: cfg.Obs, Trace: cfg.Trace,
		})
		if err != nil {
			return nil, err
		}
		c.edges = append(c.edges, edge)
	}
	mode := AggModeForStrategy(cfg.Strategy.Name())
	for m := 0; m < numDevices; m++ {
		dev, err := NewDevice(DeviceConfig{
			DeviceID:   m,
			Dataset:    cfg.Partition.Dataset,
			Indices:    cfg.Partition.Indices[m],
			Factory:    cfg.Factory,
			Optimizer:  cfg.Optimizer.New(),
			LocalSteps: cfg.LocalSteps, BatchSize: cfg.BatchSize,
			Mode: mode, Seed: cfg.Seed, Obs: cfg.Obs, Trace: cfg.Trace,
		})
		if err != nil {
			return nil, err
		}
		c.devices = append(c.devices, dev)
	}

	// Launch servers.
	c.wg.Add(1 + numEdges)
	go func() {
		defer c.wg.Done()
		if err := cloud.Run(); err != nil {
			c.recordErr(fmt.Errorf("cloud: %w", err))
		}
	}()
	for _, e := range c.edges {
		go func(e *Edge) {
			defer c.wg.Done()
			if err := e.Run(); err != nil {
				c.recordErr(fmt.Errorf("edge %d: %w", e.cfg.EdgeID, err))
			}
		}(e)
	}

	// Attach devices at their initial edges.
	for m, e := range membership {
		if err := c.devices[m].Connect(e, c.edges[e].Addr()); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) recordErr(err error) {
	c.mu.Lock()
	c.errs = append(c.errs, err)
	c.mu.Unlock()
}

// Wait blocks until the cloud and all edges terminate, disconnects the
// devices, and returns the first component error (nil on success).
func (c *Cluster) Wait() error {
	c.wg.Wait()
	for _, d := range c.devices {
		d.Disconnect()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

// GlobalModel returns the cloud's current global model.
func (c *Cluster) GlobalModel() []float64 { return c.cloud.GlobalModel() }

// DeviceRounds returns how many rounds each device trained (diagnostics).
func (c *Cluster) DeviceRounds() []int {
	out := make([]int, len(c.devices))
	for i, d := range c.devices {
		out[i] = d.Rounds()
	}
	return out
}

// MoveErrors reports how many device migrations failed.
func (c *Cluster) MoveErrors() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.moveErrs
}
