package fednet

// Tests for the Byzantine fault kinds (poisoned/NaN updates rewritten in
// transit with a valid CRC), the validator screening them out of the
// aggregation, and edge crash recovery from checkpoints.

import (
	"bytes"
	"math"
	"testing"
	"time"

	"middle/internal/checkpoint"
	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/robust"
	"middle/internal/tensor"
)

// TestRewriteVectorRoundTrip pins the Byzantine frame rewrite: the
// payload floats are transformed, the JSON header survives untouched and
// the recomputed CRC lets the frame decode cleanly — a poisoned update
// must reach validation, not die at the transport layer.
func TestRewriteVectorRoundTrip(t *testing.T) {
	mk := func() []byte {
		var buf bytes.Buffer
		if err := WriteMsg(&buf, MsgTrainReply, TrainReply{DeviceID: 3, Round: 7}, []float64{1, -2.5, 0, 4}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Sign flip: every float negated, header intact, CRC valid.
	flipped := rewriteVector(mk(), func(v float64) float64 { return -v })
	var reply TrainReply
	mt, vec, err := ReadMsg(bytes.NewReader(flipped), &reply)
	if err != nil {
		t.Fatalf("sign-flipped frame failed to decode: %v", err)
	}
	if mt != MsgTrainReply || reply.DeviceID != 3 || reply.Round != 7 {
		t.Fatalf("header damaged by rewrite: type %d, %+v", mt, reply)
	}
	for i, want := range []float64{-1, 2.5, 0, -4} {
		if vec[i] != want {
			t.Fatalf("vec[%d] = %v, want %v", i, vec[i], want)
		}
	}

	// NaN injection: all values non-finite, frame still decodes.
	nan := rewriteVector(mk(), func(float64) float64 { return math.NaN() })
	if _, vec, err = ReadMsg(bytes.NewReader(nan), &reply); err != nil {
		t.Fatalf("NaN frame failed to decode: %v", err)
	}
	for i, v := range vec {
		if !math.IsNaN(v) {
			t.Fatalf("vec[%d] = %v, want NaN", i, v)
		}
	}

	// A frame with no vector passes through untouched.
	var buf bytes.Buffer
	if err := WriteMsg(&buf, MsgRoundStart, RoundStart{Round: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if got := rewriteVector(buf.Bytes(), func(v float64) float64 { return -v }); !bytes.Equal(got, buf.Bytes()) {
		t.Fatal("vector-less frame was modified")
	}
}

// TestClusterPoisonedUpdatesRejected runs a deployment whose device–edge
// links poison and NaN-corrupt a fraction of the train replies, with the
// validator and trimmed mean switched on: the rejection counters must
// fire and the global model must stay finite.
func TestClusterPoisonedUpdatesRejected(t *testing.T) {
	mob := mobility.NewStatic(1, 6)
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 240, 3, 5)
	part := data.PartitionMajorClass(train, 6, 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 8, rng),
			nn.NewReLU(),
			nn.NewLinear(8, train.Classes, rng),
		)
	}
	reg := obs.NewRegistry()
	c, err := StartCluster(ClusterConfig{
		Rounds: 8, K: 6, LocalSteps: 1, BatchSize: 8, CloudInterval: 2,
		Strategy: core.NewGeneral(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGD, LR: 0.05},
		Mobility:  mob, Seed: 2,
		Timeout:    3 * time.Second,
		Aggregator: robust.AggTrimmedMean, TrimFrac: 0.2,
		Validate: robust.ValidatorConfig{Enabled: true, NormBound: 4},
		Faults: &FaultConfig{
			Seed:       31,
			DeviceEdge: FaultRates{Poison: 0.15, NaNUpdate: 0.1},
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("poisoned run failed with a real error: %v", err)
	}
	for i, v := range c.GlobalModel() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("global model[%d] = %v despite validation", i, v)
		}
	}
	injected := reg.Counter("fednet_injected_faults_total", "kind", "poison").Value() +
		reg.Counter("fednet_injected_faults_total", "kind", "nan").Value()
	if injected == 0 {
		t.Fatal("no Byzantine faults injected — rates or wiring broken")
	}
	nonfinite := reg.Counter("robust_rejected_updates_total", "reason", "nonfinite").Value()
	norm := reg.Counter("robust_rejected_updates_total", "reason", "norm").Value()
	if nonfinite == 0 {
		t.Fatalf("NaN updates injected but none rejected (norm rejections: %d)", norm)
	}
	if nonfinite+norm == 0 {
		t.Fatal("Byzantine updates injected but robust_rejected_updates_total never moved")
	}
	t.Logf("injected %d Byzantine frames; rejected %d non-finite, %d by norm bound",
		injected, nonfinite, norm)
}

// TestEdgeCheckpointResume runs a cluster with edge checkpointing on,
// then rebuilds edge 0 over the same directory and checks it restores
// the checkpointed round and model — the edge-tier crash recovery path.
func TestEdgeCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	mob := mobility.NewStatic(2, 4)
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 120, 3, 5)
	part := data.PartitionMajorClass(train, 4, 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 8, rng),
			nn.NewReLU(),
			nn.NewLinear(8, train.Classes, rng),
		)
	}
	reg := obs.NewRegistry()
	c, err := StartCluster(ClusterConfig{
		Rounds: 6, K: 2, LocalSteps: 1, BatchSize: 8, CloudInterval: 2,
		Strategy: core.NewMiddle(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGD, LR: 0.05},
		Mobility:  mob, Seed: 4,
		CheckpointDir: dir, EdgeCheckpoints: true,
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("fednet_checkpoints_total").Value(); got == 0 {
		t.Fatal("edge checkpointing enabled but fednet_checkpoints_total never moved")
	}

	// Both edges and the cloud share the directory; each name resolves to
	// its own latest record.
	st, ok, err := checkpoint.LoadLatestNamed(dir, "edge0")
	if err != nil || !ok {
		t.Fatalf("no edge0 checkpoint after run: ok=%v err=%v", ok, err)
	}
	if st.Round != 6 {
		t.Fatalf("edge0 checkpoint at round %d, want 6", st.Round)
	}
	if _, ok, _ := checkpoint.LoadLatestNamed(dir, "global"); !ok {
		t.Fatal("cloud checkpoint missing from the shared directory")
	}

	// "Restart" edge 0 over the same directory.
	resumed, err := NewEdge(EdgeConfig{
		EdgeID: 0, CloudAddr: "127.0.0.1:1", Addr: "127.0.0.1:0",
		K: 2, Strategy: core.NewMiddle(), Seed: 4,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.ln.Close()
	if !resumed.resumed {
		t.Fatal("edge did not mark itself resumed")
	}
	if resumed.curRound != st.Round || resumed.lastSync != st.Round {
		t.Fatalf("resumed at round %d (lastSync %d), want %d", resumed.curRound, resumed.lastSync, st.Round)
	}
	if len(resumed.edgeModel) != len(st.Model) {
		t.Fatalf("resumed model length %d, want %d", len(resumed.edgeModel), len(st.Model))
	}
	for i := range st.Model {
		if resumed.edgeModel[i] != st.Model[i] {
			t.Fatalf("resumed model differs from checkpoint at %d", i)
		}
	}
	if resumed.weight != st.EdgeWeights[0] {
		t.Fatalf("resumed weight %v, want %v", resumed.weight, st.EdgeWeights[0])
	}
}
