package fednet

import (
	"errors"
	"io"
	"net"

	"middle/internal/obs"
)

// Link classes label the traffic series, matching the simulation's
// communication accounting (device–edge vs edge–cloud).
const (
	linkDeviceEdge = "device_edge"
	linkEdgeCloud  = "edge_cloud"
	linkEdgeEdge   = "edge_edge"
)

// linkMetrics counts the protocol traffic of one link class. Instruments
// registered per (family, link) are shared across every component in the
// process, so a daemon hosting several edges reports aggregate series.
// Built from a nil registry every counter is nil and recording no-ops.
type linkMetrics struct {
	sentBytes *obs.Counter
	recvBytes *obs.Counter
	sentMsgs  *obs.Counter
	recvMsgs  *obs.Counter
	corrupt   *obs.Counter
}

func newLinkMetrics(r *obs.Registry, link string) linkMetrics {
	return linkMetrics{
		sentBytes: r.Counter("fednet_sent_bytes_total", "link", link),
		recvBytes: r.Counter("fednet_recv_bytes_total", "link", link),
		sentMsgs:  r.Counter("fednet_sent_msgs_total", "link", link),
		recvMsgs:  r.Counter("fednet_recv_msgs_total", "link", link),
		corrupt:   r.Counter("fednet_corrupt_frames_total", "link", link),
	}
}

// writeMsg writes one framed message and records the bytes that made it
// onto the wire (partial writes on error are still counted).
func (lm linkMetrics) writeMsg(w io.Writer, t MsgType, header any, vec []float64) error {
	n, err := WriteMsgCount(w, t, header, vec)
	lm.sentBytes.Add(int64(n))
	if err == nil {
		lm.sentMsgs.Inc()
	}
	return err
}

// readMsg reads one framed message and records the bytes consumed.
func (lm linkMetrics) readMsg(r io.Reader, headerOut any) (MsgType, []float64, error) {
	t, vec, n, err := ReadMsgCount(r, headerOut)
	lm.recvBytes.Add(int64(n))
	if err == nil {
		lm.recvMsgs.Inc()
	} else if errors.Is(err, ErrCorruptFrame) {
		lm.corrupt.Inc()
	}
	return t, vec, err
}

// cloudMetrics instruments the cloud coordinator.
type cloudMetrics struct {
	link           linkMetrics
	rounds         *obs.Counter
	syncs          *obs.Counter
	timeouts       *obs.Counter
	edgeDrops      *obs.Counter
	checkpoints    *obs.Counter
	shardMerges    *obs.Counter
	rejNonFinite   *obs.Counter
	rejNorm        *obs.Counter
	trimmedCoords  *obs.Counter
	clippedUpdates *obs.Counter
	roundSpan      *obs.Span
	// Membership / failure-detector accounting: edges declared dead by
	// the lease detector (or an RPC failure), rejoins admitted at a
	// bumped epoch, the current membership epoch, missed lease intervals
	// and frames fenced off for carrying a stale incarnation epoch.
	failovers   *obs.Counter
	rejoins     *obs.Counter
	epochGauge  *obs.Gauge
	leaseMisses *obs.Counter
	staleFrames *obs.Counter
}

func newCloudMetrics(r *obs.Registry) cloudMetrics {
	return cloudMetrics{
		link:           newLinkMetrics(r, linkEdgeCloud),
		rounds:         r.Counter("fednet_rounds_total"),
		syncs:          r.Counter("fednet_cloud_syncs_total"),
		timeouts:       r.Counter("fednet_timeouts_total"),
		edgeDrops:      r.Counter("fednet_edge_drops_total"),
		checkpoints:    r.Counter("fednet_checkpoints_total"),
		shardMerges:    r.Counter("fednet_shard_merges_total"),
		rejNonFinite:   r.Counter("robust_rejected_updates_total", "reason", "nonfinite"),
		rejNorm:        r.Counter("robust_rejected_updates_total", "reason", "norm"),
		trimmedCoords:  r.Counter("robust_trimmed_coords_total"),
		clippedUpdates: r.Counter("robust_clipped_updates_total"),
		roundSpan:      r.Span("fednet_rpc_seconds", "op", "cloud_round"),
		failovers:      r.Counter("fednet_edge_failovers_total"),
		rejoins:        r.Counter("fednet_edge_rejoins_total"),
		epochGauge:     r.Gauge("fednet_membership_epoch"),
		leaseMisses:    r.Counter("fednet_lease_misses_total"),
		staleFrames:    r.Counter("fednet_stale_frames_total"),
	}
}

// edgeMetrics instruments one edge server (cloud-facing and
// device-facing traffic separately).
type edgeMetrics struct {
	cloudLink      linkMetrics
	deviceLink     linkMetrics
	drops          *obs.Counter
	reconnects     *obs.Counter
	timeouts       *obs.Counter
	retries        *obs.Counter
	quorumMisses   *obs.Counter
	stragglers     *obs.Counter
	rejNonFinite   *obs.Counter
	rejNorm        *obs.Counter
	trimmedCoords  *obs.Counter
	clippedUpdates *obs.Counter
	checkpoints    *obs.Counter
	// virtualDevices gauges how many devices are attached through
	// multiplexed connections (fednet_virtual_devices) — the density
	// signal of the device-multiplexing scale-out.
	virtualDevices *obs.Gauge
	roundSpan      *obs.Span
	trainSpan      *obs.Span
	// Live-migration accounting: edge-to-edge transfer traffic, handover
	// outcomes (ok / fallback / rejected) and end-to-end handover
	// latency from journal write to accepted ack.
	migrateLink     linkMetrics
	migrateOK       *obs.Counter
	migrateFallback *obs.Counter
	migrateRejected *obs.Counter
	handoverSpan    *obs.Span
	// Self-healing accounting: devices that arrived carrying their own
	// warm state because their previous edge died, and devices evicted
	// for exceeding the edge-side lease (DeviceLeaseRounds).
	rehomed          *obs.Counter
	leaseExpirations *obs.Counter
}

func newEdgeMetrics(r *obs.Registry) edgeMetrics {
	return edgeMetrics{
		cloudLink:      newLinkMetrics(r, linkEdgeCloud),
		deviceLink:     newLinkMetrics(r, linkDeviceEdge),
		drops:          r.Counter("fednet_device_drops_total"),
		reconnects:     r.Counter("fednet_device_reconnects_total"),
		timeouts:       r.Counter("fednet_timeouts_total"),
		retries:        r.Counter("fednet_retries_total"),
		quorumMisses:   r.Counter("fednet_quorum_misses_total"),
		stragglers:     r.Counter("fednet_excluded_stragglers_total"),
		rejNonFinite:   r.Counter("robust_rejected_updates_total", "reason", "nonfinite"),
		rejNorm:        r.Counter("robust_rejected_updates_total", "reason", "norm"),
		trimmedCoords:  r.Counter("robust_trimmed_coords_total"),
		clippedUpdates: r.Counter("robust_clipped_updates_total"),
		checkpoints:    r.Counter("fednet_checkpoints_total"),
		virtualDevices: r.Gauge("fednet_virtual_devices"),
		roundSpan:      r.Span("fednet_rpc_seconds", "op", "edge_round"),
		trainSpan:      r.Span("fednet_rpc_seconds", "op", "train_rpc"),

		migrateLink:      newLinkMetrics(r, linkEdgeEdge),
		migrateOK:        r.Counter("fednet_migrations_total", "outcome", "ok"),
		migrateFallback:  r.Counter("fednet_migrations_total", "outcome", "fallback"),
		migrateRejected:  r.Counter("fednet_migrations_total", "outcome", "rejected"),
		handoverSpan:     r.Span("fednet_handover_seconds"),
		rehomed:          r.Counter("fednet_rehomed_devices_total"),
		leaseExpirations: r.Counter("fednet_lease_expirations_total"),
	}
}

// deviceMetrics instruments one device client.
type deviceMetrics struct {
	link      linkMetrics
	retries   *obs.Counter
	nonfinite *obs.Counter
	trainSpan *obs.Span
}

func newDeviceMetrics(r *obs.Registry) deviceMetrics {
	return deviceMetrics{
		link:      newLinkMetrics(r, linkDeviceEdge),
		retries:   r.Counter("fednet_retries_total"),
		nonfinite: r.Counter("hfl_nonfinite_steps_total"),
		trainSpan: r.Span("fednet_rpc_seconds", "op", "device_train"),
	}
}

// countTimeout increments c when err is a network timeout (deadline
// exceeded); other errors are left to the caller's handling.
func countTimeout(c *obs.Counter, err error) {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		c.Inc()
	}
}
