package fednet

// Self-healing membership tests: lease-driven failure detection, edge
// failover with warm device re-homing, rejoin under a bumped epoch with
// stale-incarnation fencing, and the disabled path staying inert.

import (
	"math"
	"net"
	"testing"
	"time"

	"middle/internal/core"
	"middle/internal/data"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/obs"
	"middle/internal/tensor"
)

func membershipClusterConfig(t *testing.T, rounds int, mob mobility.Model) ClusterConfig {
	t.Helper()
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 400, 5, 5)
	part := data.PartitionMajorClass(train, mob.NumDevices(), 30, 0.85, 6)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 16, rng),
			nn.NewReLU(),
			nn.NewLinear(16, train.Classes, rng),
		)
	}
	return ClusterConfig{
		Rounds: rounds, K: 2, LocalSteps: 2, BatchSize: 8, CloudInterval: 3,
		Strategy: core.NewMiddle(), Partition: part, Factory: factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Mobility:  mob, Seed: 1,
		Membership: MembershipConfig{Enabled: true, LeaseInterval: 50 * time.Millisecond},
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterFailoverRehome is the tentpole acceptance test: killing one
// of three edges mid-run (the in-process SIGKILL) must be detected by
// the cloud's lease detector, every one of its devices re-homed onto the
// survivors, and the run driven to completion with nobody stranded. The
// kill races periodic checkpointing on purpose — memberDead and
// checkpointSync share the membership state.
func TestClusterFailoverRehome(t *testing.T) {
	mob := mobility.NewMarkovRing(3, 9, 0.3, 7)
	cfg := membershipClusterConfig(t, 15, mob)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 1
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.KillEdge(2)
	waitFor(t, 10*time.Second, "edge 2 declared dead", func() bool {
		for _, e := range c.DownEdges() {
			if e == 2 {
				return true
			}
		}
		return false
	})
	if err := c.Wait(); err != nil {
		t.Fatalf("run did not survive the edge kill: %v", err)
	}
	for i, v := range c.GlobalModel() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("global model[%d] = %v after failover run", i, v)
		}
	}
	if c.Failovers() < 1 {
		t.Fatalf("failovers = %d, want >= 1", c.Failovers())
	}
	if s := c.Stranded(); len(s) != 0 {
		t.Fatalf("devices stranded after failover: %v", s)
	}
	// Three joins bump the epoch to 3; the death bumps it past that.
	if ep := c.MembershipEpoch(); ep < 4 {
		t.Fatalf("membership epoch %d, want >= 4 after 3 joins + 1 death", ep)
	}
	if got := reg.Counter("fednet_edge_failovers_total").Value(); got < 1 {
		t.Fatalf("fednet_edge_failovers_total = %d, want >= 1", got)
	}
	if c.Rehomed() < 1 {
		t.Fatalf("rehomed = %d, want >= 1 (devices lived on edge 2)", c.Rehomed())
	}
	total := 0
	for _, r := range c.DeviceRounds() {
		total += r
	}
	if total == 0 {
		t.Fatal("no device trained across the failover")
	}
	t.Logf("failover run: %d failovers, %d re-homed, epoch %d, %d device trainings",
		c.Failovers(), c.Rehomed(), c.MembershipEpoch(), total)
}

// TestClusterEdgeRejoin kills an edge, waits for the failover, restarts
// it and checks the cloud readmits it under a bumped epoch — and that a
// lease from a stale incarnation is fenced (counted and its connection
// closed) rather than resurrecting the dead member.
func TestClusterEdgeRejoin(t *testing.T) {
	mob := mobility.NewMarkovRing(3, 9, 0.3, 7)
	cfg := membershipClusterConfig(t, 20, mob)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.KillEdge(1)
	waitFor(t, 10*time.Second, "edge 1 declared dead", func() bool {
		for _, e := range c.DownEdges() {
			if e == 1 {
				return true
			}
		}
		return false
	})
	epochAtDeath := c.MembershipEpoch()

	// A zombie of the dead incarnation phones home: its lease must be
	// rejected as stale and the connection closed by the cloud.
	conn, err := net.Dial("tcp", c.cloud.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(conn, MsgLease, Lease{EdgeID: 1, Epoch: 1}, nil); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := ReadMsg(conn, &struct{}{}); err == nil {
		t.Fatal("cloud answered a stale lease instead of closing the connection")
	}
	conn.Close()
	if got := reg.Counter("fednet_stale_frames_total").Value(); got < 1 {
		t.Fatalf("fednet_stale_frames_total = %d, want >= 1 after the zombie lease", got)
	}

	if err := c.RestartEdge(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "edge 1 readmitted", func() bool {
		for _, e := range c.DownEdges() {
			if e == 1 {
				return false
			}
		}
		return c.MembershipEpoch() > epochAtDeath
	})
	if err := c.Wait(); err != nil {
		t.Fatalf("run did not survive kill+rejoin: %v", err)
	}
	if got := reg.Counter("fednet_edge_rejoins_total").Value(); got < 1 {
		t.Fatalf("fednet_edge_rejoins_total = %d, want >= 1", got)
	}
	if s := c.Stranded(); len(s) != 0 {
		t.Fatalf("devices stranded after rejoin: %v", s)
	}
	t.Logf("rejoin run: epoch %d (death at %d), %d failovers, %d re-homed",
		c.MembershipEpoch(), epochAtDeath, c.Failovers(), c.Rehomed())
}

// TestDetectorDeterministic drives the failure detector by hand: with
// SuspectMisses=2 and DeadMisses=4 a member is aged out after exactly
// four tick sweeps without a lease, a lease resets the count, and stale
// leases (wrong epoch, unknown or dead member) are rejected.
func TestDetectorDeterministic(t *testing.T) {
	deadCh := make(chan int, 1)
	c, err := NewCloud(CloudConfig{
		Addr: "127.0.0.1:0", Edges: 1, Rounds: 1, CloudInterval: 1,
		Membership: MembershipConfig{Enabled: true, SuspectMisses: 2, DeadMisses: 4},
		OnEdgeDown: func(e int) { deadCh <- e },
		Obs:        obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.ln.Close()
	p1, p2 := net.Pipe()
	defer p1.Close()
	defer p2.Close()

	ms := newMembership(0)
	c.ms = ms
	ms.mu.Lock()
	ms.epoch = 1
	ms.members[7] = &member{id: 7, epoch: 1, conn: p1}
	ms.mu.Unlock()

	if !ms.recordLease(7, 1) {
		t.Fatal("fresh lease for the live incarnation rejected")
	}
	if ms.recordLease(7, 2) {
		t.Fatal("lease with a wrong epoch accepted")
	}
	if ms.recordLease(8, 1) {
		t.Fatal("lease for an unknown member accepted")
	}

	// The credited beat absorbs the first sweep; three more sweeps leave
	// the member suspected (2 misses) but alive at 3 misses.
	for i := 0; i < 4; i++ {
		c.detectOnce(ms)
	}
	if len(ms.alive()) != 1 {
		t.Fatalf("member dead after 3 misses with DeadMisses=4")
	}
	// A lease heals the suspicion and resets the miss count…
	if !ms.recordLease(7, 1) {
		t.Fatal("lease for a suspected member rejected")
	}
	for i := 0; i < 4; i++ {
		c.detectOnce(ms)
	}
	if len(ms.alive()) != 1 {
		t.Fatal("member died 3 sweeps after a fresh lease")
	}
	// …and the 4th consecutive miss kills it.
	c.detectOnce(ms)
	select {
	case e := <-deadCh:
		if e != 7 {
			t.Fatalf("OnEdgeDown fired for edge %d, want 7", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnEdgeDown never fired after DeadMisses sweeps")
	}
	if len(ms.alive()) != 0 {
		t.Fatal("dead member still listed alive")
	}
	if ms.recordLease(7, 1) {
		t.Fatal("lease for a dead incarnation accepted")
	}
	if ms.currentEpoch() != 2 {
		t.Fatalf("epoch %d after one death from 1, want 2", ms.currentEpoch())
	}
	// Death is once per incarnation: a second sweep must not re-kill.
	c.detectOnce(ms)
	select {
	case e := <-deadCh:
		t.Fatalf("OnEdgeDown fired twice (edge %d)", e)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestClusterMembershipDisabledInert pins the default path: without
// Membership.Enabled no membership series may move and the epoch stays
// zero. (Bit-identity of disabled runs is pinned in internal/hfl, where
// execution is deterministic.)
func TestClusterMembershipDisabledInert(t *testing.T) {
	mob := mobility.NewMarkovRing(3, 9, 0.3, 7)
	cfg := membershipClusterConfig(t, 9, mob)
	cfg.Membership = MembershipConfig{}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"fednet_edge_failovers_total", "fednet_edge_rejoins_total",
		"fednet_lease_misses_total", "fednet_stale_frames_total",
		"fednet_rehomed_devices_total",
	} {
		if got := reg.Counter(series).Value(); got != 0 {
			t.Fatalf("%s = %d with membership disabled", series, got)
		}
	}
	if c.MembershipEpoch() != 0 || c.Failovers() != 0 || c.Rehomed() != 0 {
		t.Fatalf("membership accounting moved while disabled: epoch=%d failovers=%d rehomed=%d",
			c.MembershipEpoch(), c.Failovers(), c.Rehomed())
	}
}

// TestDeviceReconnectGenStorm hammers one device with back-to-back
// Connect calls alternating between two fake edges. The generation
// counter must let the latest call win — stale dials discard their
// connections instead of clobbering the newest one — and the device must
// end cleanly attached, then cleanly detached.
func TestDeviceReconnectGenStorm(t *testing.T) {
	fakeEdge := func() (string, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func(conn net.Conn) {
					defer conn.Close()
					var reg RegisterDevice
					if typ, _, err := ReadMsg(conn, &reg); err != nil || typ != MsgRegisterDevice {
						return
					}
					if err := WriteMsg(conn, MsgRegisterAck, RegisterAck{EdgeID: 0}, nil); err != nil {
						return
					}
					// Hold the connection open until shutdown; serve nothing.
					<-stop
				}(conn)
			}
		}()
		return ln.Addr().String(), func() { close(stop); ln.Close() }
	}
	addrA, stopA := fakeEdge()
	addrB, stopB := fakeEdge()
	defer stopA()
	defer stopB()

	prof := data.FastImageProfile(2)
	train := data.GenerateImagesSplit(prof, 20, 5, 5)
	dev, err := NewDevice(DeviceConfig{
		DeviceID: 1, Dataset: train, Indices: []int{0, 1, 2},
		Factory: func(rng *tensor.RNG) *nn.Network {
			return nn.NewMLP(nn.MLPConfig{In: train.SampleSize(), Classes: 2}, rng)
		},
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGD, LR: 0.1}.New(),
		Timeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		addr, id := addrA, 0
		if i%2 == 1 {
			addr, id = addrB, 1
		}
		if err := dev.Connect(id, addr); err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
	}
	if !dev.Connected() {
		t.Fatal("device not attached after the connect storm")
	}
	done := make(chan struct{})
	go func() { dev.Disconnect(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Disconnect hung after the connect storm")
	}
	if dev.Connected() {
		t.Fatal("device still reports attached after Disconnect")
	}
}
