// Package optim implements the optimizers the MIDDLE paper uses:
// SGD with momentum 0.9 for the image-classification tasks and Adam for
// the speech-recognition task (§6.1.2), plus learning-rate schedules.
package optim

import (
	"math"

	"middle/internal/nn"
)

// Optimizer updates network parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in
	// params and the optimizer's internal state.
	Step(params []*nn.Param)
	// Reset clears internal state (momentum buffers, Adam moments).
	// Called when a device's model is replaced wholesale, e.g. after a
	// cloud synchronisation, so stale momentum does not leak across
	// model generations.
	Reset()
	// LR returns the current learning rate.
	LR() float64
	// SetLR overrides the learning rate (used by schedules).
	SetLR(lr float64)
}

// MomentExporter is implemented by optimizers whose internal state —
// moment buffers plus the step counter — can be serialised for live
// migration and restored on another host. ExportMoments flattens the
// state into one slice with per-group lengths; ImportMoments is its
// inverse and reports false (leaving the optimizer untouched beyond a
// Reset) when the shapes are inconsistent.
type MomentExporter interface {
	ExportMoments() (flat []float64, lens []int, steps int)
	ImportMoments(flat []float64, lens []int, steps int) bool
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay: v ← µv + g + λw; w ← w − η·v.
type SGD struct {
	lr          float64
	Momentum    float64
	WeightDecay float64

	t        int
	velocity [][]float64
}

// NewSGD returns plain SGD with learning rate lr.
func NewSGD(lr float64) *SGD { return &SGD{lr: lr} }

// NewSGDMomentum returns SGD with the given momentum coefficient
// (the paper uses 0.9).
func NewSGDMomentum(lr, momentum float64) *SGD {
	return &SGD{lr: lr, Momentum: momentum}
}

// Step applies one SGD update.
func (s *SGD) Step(params []*nn.Param) {
	s.t++
	if s.Momentum == 0 {
		for _, p := range params {
			g := p.Grad.Data
			w := p.Value.Data
			for i := range w {
				d := g[i]
				if s.WeightDecay != 0 {
					d += s.WeightDecay * w[i]
				}
				w[i] -= s.lr * d
			}
		}
		return
	}
	s.ensureState(params)
	for j, p := range params {
		g := p.Grad.Data
		w := p.Value.Data
		v := s.velocity[j]
		for i := range w {
			d := g[i]
			if s.WeightDecay != 0 {
				d += s.WeightDecay * w[i]
			}
			v[i] = s.Momentum*v[i] + d
			w[i] -= s.lr * v[i]
		}
	}
}

func (s *SGD) ensureState(params []*nn.Param) {
	if groupsMatch(s.velocity, params) {
		return
	}
	s.velocity = make([][]float64, len(params))
	for j, p := range params {
		s.velocity[j] = make([]float64, p.Value.Size())
	}
}

// Reset clears momentum buffers and the step counter.
func (s *SGD) Reset() { s.velocity, s.t = nil, 0 }

// ExportMoments flattens the velocity buffers for live migration.
func (s *SGD) ExportMoments() (flat []float64, lens []int, steps int) {
	return flattenGroups(s.velocity), groupLens(s.velocity), s.t
}

// ImportMoments restores velocity buffers exported by ExportMoments.
// It reports false on inconsistent shapes, leaving the optimizer reset.
func (s *SGD) ImportMoments(flat []float64, lens []int, steps int) bool {
	groups, ok := unflattenGroups(flat, lens)
	if !ok {
		s.Reset()
		return false
	}
	s.velocity, s.t = groups, steps
	return true
}

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// SetLR overrides the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Adam implements the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	lr           float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	t    int
	m, v [][]float64
}

// NewAdam returns Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update.
func (a *Adam) Step(params []*nn.Param) {
	a.ensureState(params)
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for j, p := range params {
		g := p.Grad.Data
		w := p.Value.Data
		m, v := a.m[j], a.v[j]
		for i := range w {
			d := g[i]
			if a.WeightDecay != 0 {
				d += a.WeightDecay * w[i]
			}
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*d
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*d*d
			mh := m[i] / bc1
			vh := v[i] / bc2
			w[i] -= a.lr * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

func (a *Adam) ensureState(params []*nn.Param) {
	if groupsMatch(a.m, params) && groupsMatch(a.v, params) {
		return
	}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for j, p := range params {
		a.m[j] = make([]float64, p.Value.Size())
		a.v[j] = make([]float64, p.Value.Size())
	}
}

// Reset clears moment estimates and the step counter.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// ExportMoments flattens the first- and second-moment buffers for live
// migration: the m groups followed by the v groups.
func (a *Adam) ExportMoments() (flat []float64, lens []int, steps int) {
	flat = append(flattenGroups(a.m), flattenGroups(a.v)...)
	lens = append(groupLens(a.m), groupLens(a.v)...)
	return flat, lens, a.t
}

// ImportMoments restores state exported by ExportMoments. The group
// count must be even (m groups then v groups) and each half must
// describe the same shapes; it reports false otherwise, leaving the
// optimizer reset.
func (a *Adam) ImportMoments(flat []float64, lens []int, steps int) bool {
	groups, ok := unflattenGroups(flat, lens)
	if !ok || len(groups)%2 != 0 {
		a.Reset()
		return false
	}
	half := len(groups) / 2
	for j := 0; j < half; j++ {
		if len(groups[j]) != len(groups[half+j]) {
			a.Reset()
			return false
		}
	}
	if half == 0 {
		a.m, a.v = nil, nil
	} else {
		a.m, a.v = groups[:half], groups[half:]
	}
	a.t = steps
	return true
}

// LR returns the current learning rate.
func (a *Adam) LR() float64 { return a.lr }

// SetLR overrides the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// flattenGroups concatenates groups into one slice (nil for no state).
func flattenGroups(groups [][]float64) []float64 {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total == 0 {
		return nil
	}
	flat := make([]float64, 0, total)
	for _, g := range groups {
		flat = append(flat, g...)
	}
	return flat
}

// groupLens records each group's length (nil for no state).
func groupLens(groups [][]float64) []int {
	if len(groups) == 0 {
		return nil
	}
	lens := make([]int, len(groups))
	for j, g := range groups {
		lens[j] = len(g)
	}
	return lens
}

// unflattenGroups is the inverse of flattenGroups+groupLens, copying
// flat so the caller's buffer is not aliased. ok is false when the
// lengths do not add up.
func unflattenGroups(flat []float64, lens []int) (groups [][]float64, ok bool) {
	total := 0
	for _, n := range lens {
		if n < 0 {
			return nil, false
		}
		total += n
	}
	if total != len(flat) {
		return nil, false
	}
	if len(lens) == 0 {
		return nil, true
	}
	groups = make([][]float64, len(lens))
	off := 0
	for j, n := range lens {
		groups[j] = make([]float64, n)
		copy(groups[j], flat[off:off+n])
		off += n
	}
	return groups, true
}

// groupsMatch reports whether state groups already mirror the params'
// shapes exactly (count and per-group size).
func groupsMatch(groups [][]float64, params []*nn.Param) bool {
	if len(groups) != len(params) {
		return false
	}
	for j, p := range params {
		if len(groups[j]) != p.Value.Size() {
			return false
		}
	}
	return true
}

// Schedule maps a global time step to a learning rate.
type Schedule interface {
	At(step int) float64
}

// ConstantSchedule always returns the same rate.
type ConstantSchedule float64

// At returns the constant rate.
func (c ConstantSchedule) At(step int) float64 { return float64(c) }

// InverseSchedule implements η_t = η₀·γ/(γ+t), the decay used in the
// paper's Theorem 1 (η_t = 2/(µ(γ+t)) up to the constant).
type InverseSchedule struct {
	Base  float64
	Gamma float64
}

// At returns Base·Gamma/(Gamma+step).
func (s InverseSchedule) At(step int) float64 {
	return s.Base * s.Gamma / (s.Gamma + float64(step))
}

// StepSchedule decays the rate by Factor every Every steps.
type StepSchedule struct {
	Base   float64
	Every  int
	Factor float64
}

// At returns Base·Factor^⌊step/Every⌋.
func (s StepSchedule) At(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Factor, float64(step/s.Every))
}
