package optim

import (
	"math"
	"testing"

	"middle/internal/nn"
)

// stepTwice advances two identical quad params with two optimizers and
// reports whether they stay bit-identical.
func trajectoriesMatch(t *testing.T, a, b Optimizer, qa, qb *quadParam, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		qa.grad(0)
		qb.grad(0)
		a.Step([]*nn.Param{qa.p})
		b.Step([]*nn.Param{qb.p})
		if math.Float64bits(qa.w()) != math.Float64bits(qb.w()) {
			t.Fatalf("trajectories diverged at step %d: %v vs %v", i, qa.w(), qb.w())
		}
	}
}

// TestSGDMomentumTransfer proves a momentum handover is lossless: an
// optimizer warmed up on one host and transplanted via
// Export/ImportMoments continues bit-identically to one that never
// moved.
func TestSGDMomentumTransfer(t *testing.T) {
	stay := NewSGDMomentum(0.1, 0.9)
	qStay := newQuad(1.0)
	for i := 0; i < 5; i++ {
		qStay.grad(0)
		stay.Step([]*nn.Param{qStay.p})
	}

	moved := NewSGDMomentum(0.1, 0.9)
	qMoved := newQuad(qStay.w())
	flat, lens, steps := stay.ExportMoments()
	if steps != 5 {
		t.Fatalf("exported step counter %d, want 5", steps)
	}
	if !moved.ImportMoments(flat, lens, steps) {
		t.Fatal("import rejected a matching export")
	}
	trajectoriesMatch(t, stay, moved, qStay, qMoved, 10)
}

// TestAdamTransfer does the same for Adam, where the step counter feeds
// bias correction and a lost counter would visibly change step sizes.
func TestAdamTransfer(t *testing.T) {
	stay := NewAdam(0.01)
	qStay := newQuad(1.0)
	for i := 0; i < 7; i++ {
		qStay.grad(0)
		stay.Step([]*nn.Param{qStay.p})
	}

	moved := NewAdam(0.01)
	qMoved := newQuad(qStay.w())
	flat, lens, steps := stay.ExportMoments()
	if steps != 7 {
		t.Fatalf("exported step counter %d, want 7", steps)
	}
	if !moved.ImportMoments(flat, lens, steps) {
		t.Fatal("import rejected a matching export")
	}
	trajectoriesMatch(t, stay, moved, qStay, qMoved, 10)
}

// TestImportMismatchResets verifies the corrupt-handover path: a shape
// mismatch must refuse the import and leave the optimizer cold (as if
// freshly Reset), never adopt partial state.
func TestImportMismatchResets(t *testing.T) {
	s := NewSGDMomentum(0.1, 0.9)
	q := newQuad(1.0)
	q.p.Grad.Data[0] = 1
	s.Step([]*nn.Param{q.p})

	if s.ImportMoments([]float64{1, 2, 3}, []int{2}, 9) {
		t.Fatal("import accepted mismatched lens")
	}
	// After the rejected import the optimizer must behave cold: the
	// first step with a fresh velocity moves exactly lr·g.
	before := q.w()
	q.p.Grad.Data[0] = 1
	s.Step([]*nn.Param{q.p})
	if math.Abs((before-q.w())-0.1) > 1e-12 {
		t.Fatalf("post-reject step moved %v, want fresh 0.1", before-q.w())
	}

	a := NewAdam(0.01)
	qa := newQuad(1.0)
	qa.p.Grad.Data[0] = 1
	a.Step([]*nn.Param{qa.p})
	if a.ImportMoments([]float64{1}, []int{1}, 3) {
		t.Fatal("Adam import accepted half its moment groups")
	}
}

// TestImportedStateRejectedOnParamMismatch: moments imported for one
// network shape must be discarded (not crash) if the optimizer is then
// stepped against differently shaped params — the mux/resize guard.
func TestImportedStateRejectedOnParamMismatch(t *testing.T) {
	src := NewSGDMomentum(0.1, 0.9)
	q := newQuad(1.0)
	q.p.Grad.Data[0] = 1
	src.Step([]*nn.Param{q.p})
	flat, lens, steps := src.ExportMoments()

	dst := NewSGDMomentum(0.1, 0.9)
	if !dst.ImportMoments(flat, lens, steps) {
		t.Fatal("import rejected a matching export")
	}
	q2 := newQuad(1.0)
	q3 := newQuad(2.0)
	q2.p.Grad.Data[0] = 1
	q3.p.Grad.Data[0] = 1
	dst.Step([]*nn.Param{q2.p, q3.p}) // must not panic; state reallocates
}

// TestExportEmptyOptimizer: a never-stepped optimizer exports empty
// state that round-trips to another cold optimizer.
func TestExportEmptyOptimizer(t *testing.T) {
	flat, lens, steps := NewSGDMomentum(0.1, 0.9).ExportMoments()
	if len(flat) != 0 || len(lens) != 0 || steps != 0 {
		t.Fatalf("cold export not empty: %v %v %d", flat, lens, steps)
	}
	dst := NewSGDMomentum(0.1, 0.9)
	if !dst.ImportMoments(flat, lens, steps) {
		t.Fatal("cold import rejected")
	}
	flat, lens, steps = NewAdam(0.01).ExportMoments()
	if len(flat) != 0 || len(lens) != 0 || steps != 0 {
		t.Fatalf("cold Adam export not empty: %v %v %d", flat, lens, steps)
	}
}
