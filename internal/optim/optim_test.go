package optim

import (
	"math"
	"testing"

	"middle/internal/nn"
	"middle/internal/tensor"
)

// quadNet builds a 1-parameter "network" whose loss is ½(w−target)², so
// optimizer trajectories can be verified analytically.
type quadParam struct{ p *nn.Param }

func newQuad(w0 float64) *quadParam {
	p := &nn.Param{Name: "w", Value: tensor.FromSlice([]float64{w0}, 1), Grad: tensor.New(1)}
	return &quadParam{p: p}
}

func (q *quadParam) grad(target float64) { q.p.Grad.Data[0] = q.p.Value.Data[0] - target }
func (q *quadParam) w() float64          { return q.p.Value.Data[0] }

func TestSGDPlainStep(t *testing.T) {
	q := newQuad(1.0)
	s := NewSGD(0.1)
	q.grad(0)
	s.Step([]*nn.Param{q.p})
	if math.Abs(q.w()-0.9) > 1e-12 {
		t.Fatalf("w = %v, want 0.9", q.w())
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	q := newQuad(1.0)
	s := NewSGDMomentum(0.1, 0.9)
	// Constant gradient 1.0: velocities are 1, 1.9, 2.71, ...
	q.p.Grad.Data[0] = 1
	s.Step([]*nn.Param{q.p})
	w1 := q.w()
	q.p.Grad.Data[0] = 1
	s.Step([]*nn.Param{q.p})
	w2 := q.w()
	if math.Abs((1.0-w1)-0.1) > 1e-12 {
		t.Fatalf("first step moved %v, want 0.1", 1.0-w1)
	}
	if math.Abs((w1-w2)-0.19) > 1e-12 {
		t.Fatalf("second step moved %v, want 0.19", w1-w2)
	}
}

func TestSGDMomentumResetClearsVelocity(t *testing.T) {
	q := newQuad(1.0)
	s := NewSGDMomentum(0.1, 0.9)
	q.p.Grad.Data[0] = 1
	s.Step([]*nn.Param{q.p})
	s.Reset()
	q.p.Grad.Data[0] = 1
	before := q.w()
	s.Step([]*nn.Param{q.p})
	if math.Abs((before-q.w())-0.1) > 1e-12 {
		t.Fatalf("after Reset step moved %v, want fresh 0.1", before-q.w())
	}
}

func TestSGDWeightDecay(t *testing.T) {
	q := newQuad(2.0)
	s := NewSGD(0.1)
	s.WeightDecay = 0.5
	q.p.Grad.Data[0] = 0
	s.Step([]*nn.Param{q.p})
	// w ← w − lr·λ·w = 2 − 0.1·0.5·2 = 1.9
	if math.Abs(q.w()-1.9) > 1e-12 {
		t.Fatalf("w = %v, want 1.9", q.w())
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the first Adam step is ≈ lr·sign(g).
	q := newQuad(1.0)
	a := NewAdam(0.01)
	q.p.Grad.Data[0] = 3.7
	a.Step([]*nn.Param{q.p})
	moved := 1.0 - q.w()
	if math.Abs(moved-0.01) > 1e-6 {
		t.Fatalf("first Adam step %v, want ~0.01", moved)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	q := newQuad(5.0)
	a := NewAdam(0.1)
	ps := []*nn.Param{q.p}
	for i := 0; i < 500; i++ {
		q.grad(1.0)
		a.Step(ps)
	}
	if math.Abs(q.w()-1.0) > 0.05 {
		t.Fatalf("Adam ended at %v, want ~1", q.w())
	}
}

func TestAdamResetRestartsBiasCorrection(t *testing.T) {
	q := newQuad(1.0)
	a := NewAdam(0.01)
	q.p.Grad.Data[0] = 1
	a.Step([]*nn.Param{q.p})
	a.Reset()
	w := q.w()
	q.p.Grad.Data[0] = 1
	a.Step([]*nn.Param{q.p})
	if math.Abs((w-q.w())-0.01) > 1e-6 {
		t.Fatalf("post-Reset step %v, want ~0.01", w-q.w())
	}
}

func TestSetLR(t *testing.T) {
	s := NewSGD(0.1)
	s.SetLR(0.5)
	if s.LR() != 0.5 {
		t.Fatalf("LR = %v", s.LR())
	}
	a := NewAdam(0.1)
	a.SetLR(0.2)
	if a.LR() != 0.2 {
		t.Fatalf("Adam LR = %v", a.LR())
	}
}

func TestSchedules(t *testing.T) {
	c := ConstantSchedule(0.3)
	if c.At(0) != 0.3 || c.At(1000) != 0.3 {
		t.Fatal("ConstantSchedule not constant")
	}
	inv := InverseSchedule{Base: 0.1, Gamma: 10}
	if inv.At(0) != 0.1 {
		t.Fatalf("InverseSchedule.At(0) = %v", inv.At(0))
	}
	if got := inv.At(10); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("InverseSchedule.At(10) = %v, want 0.05", got)
	}
	st := StepSchedule{Base: 1, Every: 10, Factor: 0.5}
	if st.At(9) != 1 || st.At(10) != 0.5 || st.At(25) != 0.25 {
		t.Fatalf("StepSchedule values %v %v %v", st.At(9), st.At(10), st.At(25))
	}
	st0 := StepSchedule{Base: 1, Every: 0, Factor: 0.5}
	if st0.At(100) != 1 {
		t.Fatal("StepSchedule with Every=0 must be constant")
	}
}

// TestOptimizersTrainRealNetwork exercises both optimizers against the nn
// package end to end.
func TestOptimizersTrainRealNetwork(t *testing.T) {
	for name, mk := range map[string]func() Optimizer{
		"sgd-momentum": func() Optimizer { return NewSGDMomentum(0.05, 0.9) },
		"adam":         func() Optimizer { return NewAdam(0.01) },
	} {
		rng := tensor.NewRNG(42)
		net := nn.NewMLP(nn.MLPConfig{In: 2, Classes: 2, Hidden: []int{8}}, rng)
		opt := mk()
		n := 64
		x := tensor.New(n, 2)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			c := i % 2
			labels[i] = c
			off := -1.0
			if c == 1 {
				off = 1.0
			}
			x.Data[2*i] = off + 0.2*rng.NormFloat64()
			x.Data[2*i+1] = off + 0.2*rng.NormFloat64()
		}
		var last float64
		for it := 0; it < 150; it++ {
			net.ZeroGrad()
			logits := net.Forward(x, true)
			loss, g := nn.SoftmaxCrossEntropy(logits, labels)
			net.Backward(g)
			opt.Step(net.Params())
			last = loss
		}
		if last > 0.1 {
			t.Fatalf("%s: final loss %v", name, last)
		}
	}
}

func TestAdamWeightDecay(t *testing.T) {
	q := newQuad(2.0)
	a := NewAdam(0.01)
	a.WeightDecay = 0.5
	q.p.Grad.Data[0] = 0
	a.Step([]*nn.Param{q.p})
	// Effective gradient is λw = 1.0 > 0, so w must decrease.
	if q.w() >= 2.0 {
		t.Fatalf("weight decay did not shrink w: %v", q.w())
	}
}

func TestSGDVelocityReallocatedOnParamChange(t *testing.T) {
	s := NewSGDMomentum(0.1, 0.9)
	q1 := newQuad(1.0)
	q1.p.Grad.Data[0] = 1
	s.Step([]*nn.Param{q1.p})
	// Stepping with a different param-set size must not panic.
	q2 := newQuad(1.0)
	q3 := newQuad(2.0)
	q2.p.Grad.Data[0] = 1
	q3.p.Grad.Data[0] = 1
	s.Step([]*nn.Param{q2.p, q3.p})
}
