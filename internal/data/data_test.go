package data

import (
	"math"
	"testing"
	"testing/quick"

	"middle/internal/nn"
	"middle/internal/tensor"
)

func TestNewDatasetValidation(t *testing.T) {
	// Wrong data length must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short data did not panic")
			}
		}()
		NewDataset("x", []int{2}, 2, []float64{1, 2, 3}, []int{0, 1})
	}()
	// Out-of-range label must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad label did not panic")
			}
		}()
		NewDataset("x", []int{1}, 2, []float64{1, 2}, []int{0, 2})
	}()
}

func TestBatchShapesAndContent(t *testing.T) {
	d := NewDataset("x", []int{2}, 2, []float64{1, 2, 3, 4, 5, 6}, []int{0, 1, 0})
	x, y := d.Batch([]int{2, 0})
	if x.Dim(0) != 2 || x.Dim(1) != 2 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if x.At(0, 0) != 5 || x.At(1, 1) != 2 {
		t.Fatalf("batch content %v", x.Data)
	}
	if y[0] != 0 || y[1] != 0 {
		t.Fatalf("batch labels %v", y)
	}
}

func TestGenerateImagesDeterministicAndBalanced(t *testing.T) {
	p := FastImageProfile(4)
	d1 := GenerateImages(p, 40, 7)
	d2 := GenerateImages(p, 40, 7)
	for i := 0; i < d1.Len()*d1.SampleSize(); i++ {
		if d1.data[i] != d2.data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	counts := d1.ClassCounts()
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples, want 10", c, n)
		}
	}
	d3 := GenerateImages(p, 40, 8)
	same := true
	for i := range d1.data {
		if d1.data[i] != d3.data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTrainTestShareDistribution(t *testing.T) {
	// A model trained on the train split must beat chance on the test
	// split — this is exactly what breaks if prototypes are reseeded.
	train, test := GenerateTask(TaskMNIST, 300, 200, 5)
	if train.Classes != 10 || test.Classes != 10 {
		t.Fatalf("classes %d/%d", train.Classes, test.Classes)
	}
	rng := tensor.NewRNG(1)
	net := nn.NewMLP(nn.MLPConfig{In: train.SampleSize(), Classes: 10}, rng)
	flat := func(d *Dataset, idx []int) (*tensor.Tensor, []int) {
		x, y := d.Batch(idx)
		return x.Reshape(len(idx), d.SampleSize()), y
	}
	x, y := flat(train, train.All())
	for it := 0; it < 40; it++ {
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, g := nn.SoftmaxCrossEntropy(logits, y)
		net.Backward(g)
		for _, p := range net.Params() {
			p.Value.AddScaledInPlace(-0.05, p.Grad)
		}
	}
	tx, ty := flat(test, test.All())
	acc := nn.Accuracy(net.Forward(tx, false), ty)
	if acc < 0.5 {
		t.Fatalf("test accuracy %v — train/test distributions diverge", acc)
	}
}

func TestSpeechProfileIsSparse(t *testing.T) {
	p := FastSequenceProfile(4)
	d := GenerateSequences(p, 8, 3)
	// Most mass should be near zero: count |x| > 0.5.
	active := 0
	total := 0
	for i := 0; i < d.Len(); i++ {
		for _, v := range d.Sample(i) {
			if math.Abs(v) > 0.5 {
				active++
			}
			total++
		}
	}
	frac := float64(active) / float64(total)
	if frac > 0.2 {
		t.Fatalf("sequence data active fraction %v, want sparse", frac)
	}
	if active == 0 {
		t.Fatal("sequence data has no signal at all")
	}
}

func TestGaussianBlobsSeparable(t *testing.T) {
	d := GaussianBlobs("blobs", 5, 3, 150, 3.0, 0.3, 11)
	// Nearest-centroid on the generated data should be near perfect.
	centroids := make([][]float64, 3)
	counts := make([]int, 3)
	for c := range centroids {
		centroids[c] = make([]float64, 5)
	}
	for i := 0; i < d.Len(); i++ {
		y := d.Label(i)
		counts[y]++
		for j, v := range d.Sample(i) {
			centroids[y][j] += v
		}
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < d.Len(); i++ {
		best, bi := math.Inf(1), -1
		for c := range centroids {
			s := 0.0
			for j, v := range d.Sample(i) {
				diff := v - centroids[c][j]
				s += diff * diff
			}
			if s < best {
				best, bi = s, c
			}
		}
		if bi == d.Label(i) {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc < 0.95 {
		t.Fatalf("blob nearest-centroid accuracy %v", acc)
	}
}

func TestPartitionMajorClass(t *testing.T) {
	d := GenerateImages(FastImageProfile(5), 500, 1)
	p := PartitionMajorClass(d, 10, 40, 0.8, 2)
	if p.NumDevices() != 10 {
		t.Fatalf("devices %d", p.NumDevices())
	}
	for m := 0; m < 10; m++ {
		if len(p.Indices[m]) != 40 {
			t.Fatalf("device %d has %d samples", m, len(p.Indices[m]))
		}
		wantMajor := m % 5
		hist := p.LabelHistogram(m)
		if hist[wantMajor] != 32 { // 0.8 * 40
			t.Fatalf("device %d major class count %d, want 32 (hist %v)", m, hist[wantMajor], hist)
		}
		if p.MajorClassOf(m) != wantMajor {
			t.Fatalf("device %d major class %d, want %d", m, p.MajorClassOf(m), wantMajor)
		}
	}
}

func TestPartitionSingleClass(t *testing.T) {
	d := GenerateImages(FastImageProfile(4), 200, 1)
	p := PartitionSingleClass(d, 8, 20, 3)
	for m := 0; m < 8; m++ {
		hist := p.LabelHistogram(m)
		for c, n := range hist {
			if c == m%4 {
				if n != 20 {
					t.Fatalf("device %d class %d count %d", m, c, n)
				}
			} else if n != 0 {
				t.Fatalf("device %d has stray class %d", m, c)
			}
		}
	}
}

func TestPartitionEdgeSkew(t *testing.T) {
	d := GenerateImages(FastImageProfile(10), 2000, 1)
	// 6 devices: first 3 on edge 0 (major {0..4}), rest on edge 1.
	edgeOf := []int{0, 0, 0, 1, 1, 1}
	majors := [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}
	p := PartitionEdgeSkew(d, edgeOf, majors, 100, 0.7, 4)
	for m, e := range edgeOf {
		hist := p.LabelHistogram(m)
		majorN := 0
		for _, c := range majors[e] {
			majorN += hist[c]
		}
		frac := float64(majorN) / 100.0
		if frac < 0.55 || frac > 0.85 {
			t.Fatalf("device %d major fraction %v, want ≈0.7", m, frac)
		}
	}
}

func TestPartitionIIDCoversAllClasses(t *testing.T) {
	d := GenerateImages(FastImageProfile(5), 500, 1)
	p := PartitionIID(d, 4, 200, 9)
	for m := 0; m < 4; m++ {
		hist := p.LabelHistogram(m)
		for c, n := range hist {
			if n < 20 {
				t.Fatalf("device %d class %d only %d samples of 200", m, c, n)
			}
		}
	}
}

// Property: PartitionMajorClass always produces exactly perDevice indices
// per device, all valid, with the requested major fraction.
func TestQuickPartitionInvariants(t *testing.T) {
	d := GenerateImages(FastImageProfile(6), 600, 1)
	f := func(seed int64, devs8, per8 uint8) bool {
		devs := 1 + int(devs8%12)
		per := 6 + int(per8%30)
		p := PartitionMajorClass(d, devs, per, 0.8, seed)
		if p.NumDevices() != devs {
			return false
		}
		for m := 0; m < devs; m++ {
			if len(p.Indices[m]) != per {
				return false
			}
			for _, i := range p.Indices[m] {
				if i < 0 || i >= d.Len() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionMajorClassClustered(t *testing.T) {
	d := GenerateImages(FastImageProfile(10), 4000, 1)
	edges := 4
	p := PartitionMajorClassClustered(d, 20, 40, 0.85, edges, 2)
	// Every class must have at least one majoring device (coverage).
	covered := make([]bool, 10)
	for m := 0; m < 20; m++ {
		covered[p.MajorClassOf(m)] = true
	}
	for c, ok := range covered {
		if !ok {
			t.Fatalf("class %d has no majoring device", c)
		}
	}
	// Devices sharing an initial edge must major on a narrow class block:
	// spread = ceil(10/4) = 3 distinct classes at most.
	for e := 0; e < edges; e++ {
		classes := map[int]bool{}
		for m := e; m < 20; m += edges {
			classes[p.MajorClassOf(m)] = true
		}
		if len(classes) > 3 {
			t.Fatalf("edge %d devices major on %d classes, want ≤3", e, len(classes))
		}
	}
	// Major fraction respected.
	for m := 0; m < 20; m++ {
		hist := p.LabelHistogram(m)
		if hist[p.MajorClassOf(m)] != 34 { // floor(0.85*40)
			t.Fatalf("device %d major count %d", m, hist[p.MajorClassOf(m)])
		}
	}
}

func TestPartitionMajorClassClusteredPanics(t *testing.T) {
	d := GenerateImages(FastImageProfile(4), 100, 1)
	for name, fn := range map[string]func(){
		"edges":     func() { PartitionMajorClassClustered(d, 4, 10, 0.8, 0, 1) },
		"majorFrac": func() { PartitionMajorClassClustered(d, 4, 10, 1.5, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPartitionShared(t *testing.T) {
	d := GenerateImages(FastImageProfile(4), 100, 1)
	const devices, perDevice = 1000, 40
	p := PartitionShared(d, devices, perDevice, 7)
	if p.NumDevices() != devices {
		t.Fatalf("devices = %d", p.NumDevices())
	}
	seen := make([]bool, d.Len())
	for m, idx := range p.Indices {
		if len(idx) != perDevice {
			t.Fatalf("device %d shard size %d", m, len(idx))
		}
		for _, i := range idx {
			if i < 0 || i >= d.Len() {
				t.Fatalf("device %d holds out-of-range index %d", m, i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("sample %d unused despite full wraparound coverage", i)
		}
	}
	// The whole point: windows alias one backing array. Device 0 and the
	// device whose window recycles to offset 0 share storage, and the
	// index footprint is O(corpus), not O(devices × perDevice).
	recycled := 0
	for m := 1; m < devices; m++ {
		if (m*perDevice)%d.Len() == 0 { // window start wraps to offset 0
			recycled = m
			break
		}
	}
	if recycled == 0 {
		t.Fatal("no recycled window in range — pick parameters that wrap")
	}
	if &p.Indices[0][0] != &p.Indices[recycled][0] {
		t.Fatal("recycled window does not alias the shared permutation")
	}
	// Deterministic per seed, different across seeds.
	q := PartitionShared(d, devices, perDevice, 7)
	r := PartitionShared(d, devices, perDevice, 8)
	samePQ, samePR := true, true
	for i := range p.Indices[3] {
		if p.Indices[3][i] != q.Indices[3][i] {
			samePQ = false
		}
		if p.Indices[3][i] != r.Indices[3][i] {
			samePR = false
		}
	}
	if !samePQ {
		t.Fatal("same seed produced different shards")
	}
	if samePR {
		t.Fatal("different seeds produced identical shards")
	}
}

func TestPartitionSharedPanics(t *testing.T) {
	d := GenerateImages(FastImageProfile(4), 20, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero devices did not panic")
		}
	}()
	PartitionShared(d, 0, 5, 1)
}
