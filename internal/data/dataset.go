// Package data provides the learning tasks of the MIDDLE evaluation.
// The paper trains on MNIST, EMNIST-Letters, CIFAR10 and SpeechCommands;
// those corpora are not available to an offline stdlib-only build, so this
// package generates synthetic class-conditional datasets with matching
// geometry (see DESIGN.md, "Substitutions") plus the Non-IID label-skew
// partitioners of §6.1.2.
package data

import (
	"fmt"

	"middle/internal/tensor"
)

// Dataset is an in-memory labelled dataset. Samples are stored flattened
// and contiguous; Batch materialises any index subset as a tensor.
type Dataset struct {
	Name    string
	Shape   []int // per-sample shape, e.g. [1, 28, 28] or [1, 4000]
	Classes int

	data   []float64
	labels []int
}

// NewDataset wraps raw storage in a Dataset. data must hold len(labels)
// samples of prod(shape) values each.
func NewDataset(name string, shape []int, classes int, data []float64, labels []int) *Dataset {
	ss := 1
	for _, d := range shape {
		ss *= d
	}
	if len(data) != ss*len(labels) {
		panic(fmt.Sprintf("data: %d values cannot hold %d samples of size %d", len(data), len(labels), ss))
	}
	for i, y := range labels {
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("data: label %d of sample %d out of range [0,%d)", y, i, classes))
		}
	}
	return &Dataset{Name: name, Shape: append([]int(nil), shape...), Classes: classes, data: data, labels: labels}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.labels) }

// SampleSize returns the number of values per sample.
func (d *Dataset) SampleSize() int {
	ss := 1
	for _, x := range d.Shape {
		ss *= x
	}
	return ss
}

// Label returns the label of sample i.
func (d *Dataset) Label(i int) int { return d.labels[i] }

// Sample returns a read-only view of the values of sample i.
func (d *Dataset) Sample(i int) []float64 {
	ss := d.SampleSize()
	return d.data[i*ss : (i+1)*ss]
}

// Batch materialises the samples at idx as a tensor of shape
// [len(idx), Shape...] along with their labels.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	ss := d.SampleSize()
	shape := append([]int{len(idx)}, d.Shape...)
	x := tensor.New(shape...)
	labels := make([]int, len(idx))
	for bi, i := range idx {
		copy(x.Data[bi*ss:(bi+1)*ss], d.Sample(i))
		labels[bi] = d.labels[i]
	}
	return x, labels
}

// All returns the index list [0, Len).
func (d *Dataset) All() []int {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// ByClass returns, for each class, the indices of its samples.
func (d *Dataset) ByClass() [][]int {
	out := make([][]int, d.Classes)
	for i, y := range d.labels {
		out[y] = append(out[y], i)
	}
	return out
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	out := make([]int, d.Classes)
	for _, y := range d.labels {
		out[y]++
	}
	return out
}
