package data

import (
	"fmt"
	"math"

	"middle/internal/tensor"
)

// ImageProfile parameterises the synthetic image generator. Each class
// owns a smooth prototype field (a mixture of low-frequency plane waves
// with class-keyed frequencies and phases); a sample is its class
// prototype under a small random translation plus white noise, so a CNN
// must learn translation-tolerant class features — the same inductive
// structure the paper's image tasks exercise.
type ImageProfile struct {
	Name    string
	C, H, W int
	Classes int
	Waves   int     // plane waves mixed into each prototype
	Shift   int     // max |translation| in pixels per axis
	Noise   float64 // white-noise std added per pixel
}

// MNISTProfile mirrors MNIST geometry: 10 classes of 1×28×28.
func MNISTProfile() ImageProfile {
	return ImageProfile{Name: "mnist", C: 1, H: 28, W: 28, Classes: 10, Waves: 4, Shift: 2, Noise: 0.25}
}

// EMNISTProfile mirrors EMNIST-Letters geometry: 26 classes of 1×28×28.
// More classes with the same budget of distinguishing structure makes the
// task harder, as in the paper.
func EMNISTProfile() ImageProfile {
	return ImageProfile{Name: "emnist", C: 1, H: 28, W: 28, Classes: 26, Waves: 4, Shift: 2, Noise: 0.3}
}

// CIFARProfile mirrors CIFAR10 geometry: 10 classes of 3×32×32 with more
// noise and larger jitter, making it the hardest image task.
func CIFARProfile() ImageProfile {
	return ImageProfile{Name: "cifar10", C: 3, H: 32, W: 32, Classes: 10, Waves: 3, Shift: 4, Noise: 0.55}
}

// FastImageProfile is a reduced-geometry task (1×8×8) for tests and fast
// benchmark runs.
func FastImageProfile(classes int) ImageProfile {
	return ImageProfile{Name: "fast-image", C: 1, H: 8, W: 8, Classes: classes, Waves: 3, Shift: 1, Noise: 0.8}
}

// GenerateImages synthesises n labelled images for the profile. Labels
// cycle round-robin so classes are balanced. The same (profile, seed)
// always produces the same dataset.
func GenerateImages(p ImageProfile, n int, seed int64) *Dataset {
	return GenerateImagesSplit(p, n, seed, seed)
}

// GenerateImagesSplit separates the prototype seed (the class-conditional
// distribution) from the sampling seed. Train and test sets of one task
// share protoSeed and use distinct sampleSeeds, so they are disjoint
// draws from the same distribution.
func GenerateImagesSplit(p ImageProfile, n int, protoSeed, sampleSeed int64) *Dataset {
	protos := imagePrototypes(p, protoSeed)
	rng := tensor.Split(sampleSeed, 0x1A0E)
	ss := p.C * p.H * p.W
	data := make([]float64, n*ss)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % p.Classes
		labels[i] = cls
		dst := data[i*ss : (i+1)*ss]
		dy := rng.Intn(2*p.Shift+1) - p.Shift
		dx := rng.Intn(2*p.Shift+1) - p.Shift
		proto := protos[cls]
		for c := 0; c < p.C; c++ {
			for y := 0; y < p.H; y++ {
				sy := clamp(y+dy, 0, p.H-1)
				for x := 0; x < p.W; x++ {
					sx := clamp(x+dx, 0, p.W-1)
					v := proto[(c*p.H+sy)*p.W+sx] + p.Noise*rng.NormFloat64()
					dst[(c*p.H+y)*p.W+x] = v
				}
			}
		}
	}
	return NewDataset(p.Name, []int{p.C, p.H, p.W}, p.Classes, data, labels)
}

// imagePrototypes builds one deterministic prototype field per class.
func imagePrototypes(p ImageProfile, seed int64) [][]float64 {
	protos := make([][]float64, p.Classes)
	for cls := 0; cls < p.Classes; cls++ {
		rng := tensor.Split(seed, int64(1000+cls))
		proto := make([]float64, p.C*p.H*p.W)
		for c := 0; c < p.C; c++ {
			for w := 0; w < p.Waves; w++ {
				fx := (rng.Float64()*2 - 1) * 3 / float64(p.W)
				fy := (rng.Float64()*2 - 1) * 3 / float64(p.H)
				phase := rng.Float64() * 2 * math.Pi
				amp := 0.5 + rng.Float64()
				for y := 0; y < p.H; y++ {
					for x := 0; x < p.W; x++ {
						proto[(c*p.H+y)*p.W+x] += amp * math.Cos(2*math.Pi*(fx*float64(x)+fy*float64(y))+phase)
					}
				}
			}
		}
		protos[cls] = proto
	}
	return protos
}

// SequenceProfile parameterises the synthetic 1-D signal generator that
// stands in for SpeechCommands: long, mostly-zero vectors where each
// class places Gaussian bursts ("formants") at class-keyed positions.
type SequenceProfile struct {
	Name    string
	L       int
	Classes int
	Bursts  int     // bursts per class prototype
	Width   float64 // burst width (std in samples)
	Jitter  int     // max temporal shift of each burst
	Noise   float64 // white-noise std
}

// SpeechProfile mirrors the paper's speech task: 10 classes of long
// sparse vectors (the paper notes "long sparse vectors" explicitly).
func SpeechProfile() SequenceProfile {
	return SequenceProfile{Name: "speech", L: 4000, Classes: 10, Bursts: 6, Width: 18, Jitter: 60, Noise: 0.08}
}

// FastSequenceProfile is a reduced-length sequence task for tests.
func FastSequenceProfile(classes int) SequenceProfile {
	return SequenceProfile{Name: "fast-seq", L: 1600, Classes: classes, Bursts: 4, Width: 10, Jitter: 35, Noise: 0.2}
}

// GenerateSequences synthesises n labelled sequences for the profile.
func GenerateSequences(p SequenceProfile, n int, seed int64) *Dataset {
	return GenerateSequencesSplit(p, n, seed, seed)
}

// GenerateSequencesSplit separates the prototype seed from the sampling
// seed, as GenerateImagesSplit does for images.
func GenerateSequencesSplit(p SequenceProfile, n int, protoSeed, sampleSeed int64) *Dataset {
	type burst struct {
		pos  int
		amp  float64
		sign float64
	}
	protos := make([][]burst, p.Classes)
	for cls := 0; cls < p.Classes; cls++ {
		rng := tensor.Split(protoSeed, int64(2000+cls))
		bs := make([]burst, p.Bursts)
		for b := range bs {
			sign := 1.0
			if rng.Float64() < 0.5 {
				sign = -1
			}
			bs[b] = burst{
				pos:  int(rng.Float64() * float64(p.L)),
				amp:  0.8 + rng.Float64(),
				sign: sign,
			}
		}
		protos[cls] = bs
	}
	rng := tensor.Split(sampleSeed, 0x5EC5)
	data := make([]float64, n*p.L)
	labels := make([]int, n)
	halfSpan := int(3 * p.Width)
	for i := 0; i < n; i++ {
		cls := i % p.Classes
		labels[i] = cls
		dst := data[i*p.L : (i+1)*p.L]
		for _, b := range protos[cls] {
			center := b.pos + rng.Intn(2*p.Jitter+1) - p.Jitter
			lo, hi := clamp(center-halfSpan, 0, p.L-1), clamp(center+halfSpan, 0, p.L-1)
			for t := lo; t <= hi; t++ {
				d := float64(t-center) / p.Width
				dst[t] += b.sign * b.amp * math.Exp(-0.5*d*d)
			}
		}
		if p.Noise > 0 {
			for t := range dst {
				dst[t] += p.Noise * rng.NormFloat64()
			}
		}
	}
	return NewDataset(p.Name, []int{1, p.L}, p.Classes, data, labels)
}

// GaussianBlobs generates a simple d-dimensional Gaussian-mixture task
// (one spherical blob per class), used for smoke tests and the theory
// experiments where convex models suffice.
func GaussianBlobs(name string, d, classes, n int, sep, noise float64, seed int64) *Dataset {
	centers := make([][]float64, classes)
	for cls := 0; cls < classes; cls++ {
		rng := tensor.Split(seed, int64(3000+cls))
		c := make([]float64, d)
		for j := range c {
			c[j] = sep * rng.NormFloat64()
		}
		centers[cls] = c
	}
	rng := tensor.Split(seed, 0xB10B)
	data := make([]float64, n*d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % classes
		labels[i] = cls
		dst := data[i*d : (i+1)*d]
		for j := range dst {
			dst[j] = centers[cls][j] + noise*rng.NormFloat64()
		}
	}
	return NewDataset(name, []int{d}, classes, data, labels)
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// TaskName identifies one of the four paper evaluation tasks.
type TaskName string

// The four learning tasks of the paper's evaluation (§6.1.1).
const (
	TaskMNIST  TaskName = "mnist"
	TaskEMNIST TaskName = "emnist"
	TaskCIFAR  TaskName = "cifar10"
	TaskSpeech TaskName = "speech"
)

// AllTasks lists the evaluation tasks in paper order.
func AllTasks() []TaskName {
	return []TaskName{TaskMNIST, TaskEMNIST, TaskCIFAR, TaskSpeech}
}

// GenerateTask produces train and test datasets for a named paper task at
// the given sizes. Train and test draw from the same class prototypes
// (same seed) but with independent sampling noise.
func GenerateTask(task TaskName, trainN, testN int, seed int64) (train, test *Dataset) {
	switch task {
	case TaskMNIST:
		p := MNISTProfile()
		return GenerateImagesSplit(p, trainN, seed, seed), GenerateImagesSplit(p, testN, seed, seed+1_000_003)
	case TaskEMNIST:
		p := EMNISTProfile()
		return GenerateImagesSplit(p, trainN, seed, seed), GenerateImagesSplit(p, testN, seed, seed+1_000_003)
	case TaskCIFAR:
		p := CIFARProfile()
		return GenerateImagesSplit(p, trainN, seed, seed), GenerateImagesSplit(p, testN, seed, seed+1_000_003)
	case TaskSpeech:
		p := SpeechProfile()
		return GenerateSequencesSplit(p, trainN, seed, seed), GenerateSequencesSplit(p, testN, seed, seed+1_000_003)
	default:
		panic(fmt.Sprintf("data: unknown task %q", task))
	}
}
