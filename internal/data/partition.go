package data

import (
	"fmt"

	"middle/internal/tensor"
)

// Partition assigns every device a list of sample indices into a parent
// dataset. Partitions are the unit the federated engine trains on: each
// simulated device sees only its own indices.
type Partition struct {
	Dataset *Dataset
	// Indices[m] lists the samples owned by device m.
	Indices [][]int
}

// NumDevices returns the number of devices in the partition.
func (p *Partition) NumDevices() int { return len(p.Indices) }

// Sizes returns the number of samples per device (d_m in the paper).
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.Indices))
	for i, idx := range p.Indices {
		out[i] = len(idx)
	}
	return out
}

// classPools builds shuffled per-class index pools with a cursor, drawing
// without replacement and rewinding when a class is exhausted.
type classPools struct {
	pools [][]int
	cur   []int
}

func newClassPools(d *Dataset, rng *tensor.RNG) *classPools {
	pools := d.ByClass()
	for _, pool := range pools {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	return &classPools{pools: pools, cur: make([]int, len(pools))}
}

// draw returns the next sample index of class c, recycling the pool when
// it is exhausted (devices may then share samples, which is acceptable in
// simulation and keeps per-device sizes exact).
func (cp *classPools) draw(c int) int {
	pool := cp.pools[c]
	if len(pool) == 0 {
		panic(fmt.Sprintf("data: class %d has no samples to draw", c))
	}
	idx := pool[cp.cur[c]%len(pool)]
	cp.cur[c]++
	return idx
}

// PartitionMajorClass implements the paper's §6.1.2 Non-IID setting:
// every device has a major class holding majorFrac (> 0.8 in the paper)
// of its perDevice samples, with the remainder drawn uniformly from the
// other classes. Device m's major class is m mod Classes, so all classes
// are represented across the fleet.
func PartitionMajorClass(d *Dataset, numDevices, perDevice int, majorFrac float64, seed int64) *Partition {
	if majorFrac < 0 || majorFrac > 1 {
		panic(fmt.Sprintf("data: majorFrac %v outside [0,1]", majorFrac))
	}
	rng := tensor.Split(seed, 0x9A47)
	cp := newClassPools(d, rng)
	indices := make([][]int, numDevices)
	for m := 0; m < numDevices; m++ {
		major := m % d.Classes
		nMajor := int(majorFrac * float64(perDevice))
		own := make([]int, 0, perDevice)
		for i := 0; i < nMajor; i++ {
			own = append(own, cp.draw(major))
		}
		for i := nMajor; i < perDevice; i++ {
			c := rng.Intn(d.Classes - 1)
			if c >= major {
				c++
			}
			own = append(own, cp.draw(c))
		}
		indices[m] = own
	}
	return &Partition{Dataset: d, Indices: indices}
}

// PartitionMajorClassClustered is PartitionMajorClass with the major
// classes *clustered by initial edge*: device m (whose initial edge under
// round-robin assignment is m mod edges) majors on a class from its
// edge's contiguous class block. This models geographically correlated
// data — devices near the same base station see similar classes — which
// is what makes Non-IID-across-edges persist under locality-preserving
// mobility. Blocks overlap just enough that every class has at least one
// majoring device.
func PartitionMajorClassClustered(d *Dataset, numDevices, perDevice int, majorFrac float64, edges int, seed int64) *Partition {
	if edges < 1 {
		panic(fmt.Sprintf("data: clustered partition needs ≥1 edge, got %d", edges))
	}
	if majorFrac < 0 || majorFrac > 1 {
		panic(fmt.Sprintf("data: majorFrac %v outside [0,1]", majorFrac))
	}
	c := d.Classes
	spread := (c + edges - 1) / edges // ceil(C/E): block width per edge
	rng := tensor.Split(seed, 0x9A48)
	cp := newClassPools(d, rng)
	indices := make([][]int, numDevices)
	for m := 0; m < numDevices; m++ {
		e := m % edges
		r := m / edges
		major := (e*c/edges + r%spread) % c
		nMajor := int(majorFrac * float64(perDevice))
		own := make([]int, 0, perDevice)
		for i := 0; i < nMajor; i++ {
			own = append(own, cp.draw(major))
		}
		for i := nMajor; i < perDevice; i++ {
			cc := rng.Intn(c - 1)
			if cc >= major {
				cc++
			}
			own = append(own, cp.draw(cc))
		}
		indices[m] = own
	}
	return &Partition{Dataset: d, Indices: indices}
}

// PartitionShared builds a population-scale partition whose per-device
// shards are windows into ONE shared shuffled permutation of the parent
// dataset. A materialized partition costs O(devices × perDevice) ints —
// at a million devices that is gigabytes of index storage before a
// single model is allocated — while the shared form costs
// O(datasetLen + perDevice) ints plus one slice header per device,
// because every window aliases the same backing array. Windows stride
// through the permutation and wrap, so devices share samples once the
// corpus is exhausted: acceptable in simulation, and the price of
// bounding memory by the corpus instead of the population. Unlike
// PartitionMajorClass the shards are IID; the scale path trades the
// Non-IID structure for a memory footprint independent of the fleet.
func PartitionShared(d *Dataset, numDevices, perDevice int, seed int64) *Partition {
	if numDevices < 1 || perDevice < 1 {
		panic(fmt.Sprintf("data: shared partition needs ≥1 device and ≥1 sample, got %d/%d", numDevices, perDevice))
	}
	n := d.Len()
	if n < 1 {
		panic("data: shared partition over an empty dataset")
	}
	rng := tensor.Split(seed, 0x5AAD)
	perm := rng.Perm(n)
	// Extend by repetition so every window starting below n fits without
	// a per-device copy; windows that cross the end wrap into the repeat.
	ext := perm
	for len(ext) < n+perDevice {
		ext = append(ext, perm...)
	}
	indices := make([][]int, numDevices)
	for m := range indices {
		start := (m * perDevice) % n
		indices[m] = ext[start : start+perDevice : start+perDevice]
	}
	return &Partition{Dataset: d, Indices: indices}
}

// PartitionSingleClass assigns each device samples of exactly one class
// (device m gets class m mod Classes), the setting of the paper's
// Figure 2 motivation experiment.
func PartitionSingleClass(d *Dataset, numDevices, perDevice int, seed int64) *Partition {
	return PartitionMajorClass(d, numDevices, perDevice, 1.0, seed)
}

// PartitionEdgeSkew implements the paper's Figure 1 motivation setting:
// devices belong to edges, and each *edge* has a label distribution that
// puts majorFrac of mass on its majorClasses and the rest on the others.
// edgeOf[m] names the edge of device m; majorClasses[e] lists edge e's
// major classes.
func PartitionEdgeSkew(d *Dataset, edgeOf []int, majorClasses [][]int, perDevice int, majorFrac float64, seed int64) *Partition {
	rng := tensor.Split(seed, 0xED6E)
	cp := newClassPools(d, rng)
	numEdges := len(majorClasses)
	minor := make([][]int, numEdges)
	for e, major := range majorClasses {
		isMajor := make(map[int]bool, len(major))
		for _, c := range major {
			if c < 0 || c >= d.Classes {
				panic(fmt.Sprintf("data: edge %d major class %d out of range", e, c))
			}
			isMajor[c] = true
		}
		for c := 0; c < d.Classes; c++ {
			if !isMajor[c] {
				minor[e] = append(minor[e], c)
			}
		}
	}
	indices := make([][]int, len(edgeOf))
	for m, e := range edgeOf {
		if e < 0 || e >= numEdges {
			panic(fmt.Sprintf("data: device %d assigned to unknown edge %d", m, e))
		}
		own := make([]int, 0, perDevice)
		for i := 0; i < perDevice; i++ {
			var c int
			if rng.Float64() < majorFrac || len(minor[e]) == 0 {
				mc := majorClasses[e]
				c = mc[rng.Intn(len(mc))]
			} else {
				c = minor[e][rng.Intn(len(minor[e]))]
			}
			own = append(own, cp.draw(c))
		}
		indices[m] = own
	}
	return &Partition{Dataset: d, Indices: indices}
}

// PartitionIID gives each device perDevice samples drawn uniformly.
func PartitionIID(d *Dataset, numDevices, perDevice int, seed int64) *Partition {
	rng := tensor.Split(seed, 0x11D0)
	indices := make([][]int, numDevices)
	for m := range indices {
		own := make([]int, perDevice)
		for i := range own {
			own[i] = rng.Intn(d.Len())
		}
		indices[m] = own
	}
	return &Partition{Dataset: d, Indices: indices}
}

// WithLabelNoise models heterogeneous device data quality: a fraction of
// devices are "noisy" and have a fraction of their samples relabelled
// uniformly at random. Real federated corpora (crowd-recorded speech,
// user-labelled images) exhibit exactly this per-device quality skew; it
// is what keeps pure loss-based device selection from dominating, since
// noisy devices retain high training loss forever. The parent dataset is
// not modified: the result wraps a copy of the labels.
func (p *Partition) WithLabelNoise(fracDevices, fracSamples float64, seed int64) *Partition {
	if fracDevices < 0 || fracDevices > 1 || fracSamples < 0 || fracSamples > 1 {
		panic(fmt.Sprintf("data: noise fractions (%v, %v) outside [0,1]", fracDevices, fracSamples))
	}
	d := p.Dataset
	labels := make([]int, d.Len())
	copy(labels, d.labels)
	rng := tensor.Split(seed, 0x401E)
	for m := range p.Indices {
		if rng.Float64() >= fracDevices {
			continue
		}
		for _, i := range p.Indices[m] {
			if rng.Float64() < fracSamples {
				labels[i] = rng.Intn(d.Classes)
			}
		}
	}
	noisy := &Dataset{Name: d.Name + "+noise", Shape: append([]int(nil), d.Shape...), Classes: d.Classes, data: d.data, labels: labels}
	indices := make([][]int, len(p.Indices))
	for m := range indices {
		indices[m] = append([]int(nil), p.Indices[m]...)
	}
	return &Partition{Dataset: noisy, Indices: indices}
}

// MajorClassOf returns the most frequent label in the device's shard,
// useful for assertions and diagnostics.
func (p *Partition) MajorClassOf(device int) int {
	counts := make([]int, p.Dataset.Classes)
	for _, i := range p.Indices[device] {
		counts[p.Dataset.Label(i)]++
	}
	best, bi := -1, 0
	for c, n := range counts {
		if n > best {
			best, bi = n, c
		}
	}
	return bi
}

// LabelHistogram returns the per-class sample counts of one device.
func (p *Partition) LabelHistogram(device int) []int {
	counts := make([]int, p.Dataset.Classes)
	for _, i := range p.Indices[device] {
		counts[p.Dataset.Label(i)]++
	}
	return counts
}
