// Trace replay: record a random-waypoint mobility trace (the role ONE
// simulator traces play in the paper), persist it, reload it and replay
// the exact same movement in two simulations — demonstrating that runs
// are bit-for-bit repeatable from a trace file plus a seed, and showing
// the communication accounting of a run.
//
//	go run ./examples/trace_replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"middle"
)

func main() {
	const seed = 9
	setup := middle.NewTaskSetup(middle.TaskMNIST, middle.Fast, seed)

	// Record a planar waypoint trace over 2×2 edge cells... the fast
	// topology has 4 edges, so a 2×2 grid matches it exactly.
	steps := 40
	wp := middle.NewRandomWaypointMobility(2, 2, setup.Devices, 0.04, 0.12, 2, seed)
	trace := middle.RecordTrace(wp, steps+1) // +1 row: the engine consumes M⁰ first
	fmt.Printf("recorded waypoint trace: %d steps, empirical mobility P=%.3f\n",
		trace.Steps(), trace.EmpiricalMobility())

	// Persist and reload (any io.Reader/Writer works; files in practice).
	var buf bytes.Buffer
	if err := trace.Write(&buf); err != nil {
		log.Fatal(err)
	}
	reloaded, err := middle.ReadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}

	part := setup.Partition(seed)
	run := func(tr *middle.Trace) *middle.History {
		sim := middle.NewSimulation(setup.Config(seed, steps), setup.Factory,
			part, setup.Test, tr.Replay(), middle.MIDDLE())
		h := sim.Run()
		de, ec := sim.CommCounts()
		fmt.Printf("  final acc %.4f | device-edge transfers %d | edge-cloud transfers %d\n",
			h.FinalAcc(), de, ec)
		return h
	}

	fmt.Println("run 1 (original trace):")
	h1 := run(trace)
	fmt.Println("run 2 (reloaded trace):")
	h2 := run(reloaded)

	identical := len(h1.GlobalAcc) == len(h2.GlobalAcc)
	for i := range h1.GlobalAcc {
		if h1.GlobalAcc[i] != h2.GlobalAcc[i] {
			identical = false
		}
	}
	fmt.Printf("curves identical across replay: %v\n", identical)
}
