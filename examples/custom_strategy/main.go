// Custom strategy: the engine's Strategy interface has exactly two policy
// hooks — in-edge device selection and on-device model initialisation —
// so new policies drop in beside MIDDLE. This example builds
// "StalenessAware": it selects the devices that have trained least
// recently (maximum staleness, a fairness-flavoured policy) while keeping
// MIDDLE's Eq. 9 on-device aggregation, and races it against MIDDLE.
//
//	go run ./examples/custom_strategy
package main

import (
	"fmt"

	"middle"
)

// StalenessAware selects by training staleness and initialises moved
// devices with the similarity-weighted aggregation of paper Eq. 9.
type StalenessAware struct{}

// Name identifies the strategy in reports.
func (StalenessAware) Name() string { return "StalenessAware" }

// Select picks the k devices that have waited longest since their last
// training round (never-trained devices first).
func (StalenessAware) Select(v middle.View, edge int, candidates []int, k int, rng *middle.RNG) []int {
	now := v.Step()
	return middle.TopKByScore(candidates, func(m int) float64 {
		last := v.LastTrained(m)
		if last < 0 {
			return float64(now) + 1 // never trained: maximal staleness
		}
		return float64(now - last)
	}, k, rng)
}

// InitLocal reuses MIDDLE's on-device aggregation for moved devices.
func (StalenessAware) InitLocal(v middle.View, device, edge int, moved bool) []float64 {
	edgeModel := v.EdgeModel(edge)
	if !moved {
		return append([]float64(nil), edgeModel...)
	}
	agg, _ := middle.OnDeviceAggregate(edgeModel, v.LocalModel(device))
	return agg
}

func main() {
	const seed = 5
	setup := middle.NewTaskSetup(middle.TaskMNIST, middle.Fast, seed)
	part := setup.Partition(seed)

	var curves []middle.Series
	for _, strat := range []middle.Strategy{middle.MIDDLE(), StalenessAware{}} {
		mob := middle.NewMarkovMobility(setup.Edges, setup.Devices, 0.5, seed+11)
		sim := middle.NewSimulation(setup.Config(seed, 80), setup.Factory, part, setup.Test, mob, strat)
		h := sim.Run()
		curves = append(curves, middle.Series{Name: strat.Name(), X: h.Steps, Y: h.GlobalAcc})
		fmt.Printf("%-16s final accuracy %.4f\n", strat.Name(), h.FinalAcc())
	}
	fmt.Print(middle.LineChart("MIDDLE vs a custom strategy", curves, 70, 14))
}
