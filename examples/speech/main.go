// Speech: the paper's fourth task end to end — long sparse 1-D signals
// classified by a 3-conv 1-D CNN trained with Adam (paper §6.1.2), the
// configuration where the paper reports the largest benefit from
// cross-edge knowledge sharing on complex tasks.
//
//	go run ./examples/speech
package main

import (
	"fmt"

	"middle"
)

func main() {
	const seed = 7
	setup := middle.NewTaskSetup(middle.TaskSpeech, middle.Fast, seed)
	fmt.Printf("task=%s classes=%d sample=%v optimizer=%s lr=%g\n",
		setup.Task, setup.Test.Classes, setup.Test.Shape, setup.Optimizer.Kind, setup.Optimizer.LR)

	part := setup.Partition(seed)
	var curves []middle.Series
	var results []middle.TTAResult
	for _, strat := range []middle.Strategy{middle.MIDDLE(), middle.OORT()} {
		mob := middle.NewMarkovMobility(setup.Edges, setup.Devices, 0.5, seed+11)
		sim := middle.NewSimulation(setup.Config(seed, 60), setup.Factory, part, setup.Test, mob, strat)
		h := sim.Run()
		curves = append(curves, middle.Series{Name: strat.Name(), X: h.Steps, Y: h.GlobalAcc})
		r := middle.TTAResult{Strategy: strat.Name(), FinalAcc: h.FinalAcc()}
		if step, ok := h.TimeToAccuracy(setup.TargetAcc); ok {
			r.Steps, r.Reached = step, true
		}
		results = append(results, r)
	}
	fmt.Print(middle.LineChart("speech-profile task (Conv1D + Adam)", curves, 70, 14))
	fmt.Println(middle.SpeedupTable(results, "MIDDLE", setup.TargetAcc))
}
