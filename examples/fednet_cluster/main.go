// Networked cluster: run the full device-edge-cloud system as real TCP
// servers and clients in one process — cloud coordinator, two edge
// servers, and ten devices that physically migrate between the edges
// while training (the deployment-shaped counterpart of the simulation).
//
//	go run ./examples/fednet_cluster
package main

import (
	"fmt"
	"log"

	"middle"
	"middle/internal/data"
	"middle/internal/fednet"
	"middle/internal/hfl"
	"middle/internal/mobility"
	"middle/internal/nn"
	"middle/internal/tensor"
)

func main() {
	const seed = 4
	prof := data.FastImageProfile(4)
	train := data.GenerateImagesSplit(prof, 800, seed, seed)
	test := data.GenerateImagesSplit(prof, 300, seed, seed+1_000_003)
	part := data.PartitionMajorClass(train, 10, 60, 0.85, seed)
	factory := func(rng *tensor.RNG) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewLinear(train.SampleSize(), 24, rng),
			nn.NewReLU(),
			nn.NewLinear(24, train.Classes, rng),
		)
	}

	mob := mobility.NewMarkovRing(2, 10, 0.4, seed)
	cluster, err := fednet.StartCluster(fednet.ClusterConfig{
		Rounds: 20, K: 3, LocalSteps: 4, BatchSize: 12, CloudInterval: 5,
		Strategy:  middle.MIDDLE(),
		Partition: part,
		Factory:   factory,
		Optimizer: hfl.OptimizerSpec{Kind: hfl.OptSGDMomentum, LR: 0.05, Momentum: 0.9},
		Mobility:  mob,
		Seed:      seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster up: 1 cloud + 2 edges + 10 migrating devices on loopback TCP")

	evalNet := factory(tensor.NewRNG(1))
	x, y := test.Batch(test.All())
	evalNet.SetParamVector(cluster.GlobalModel())
	before := nn.Accuracy(evalNet.Forward(x, false), y)

	if err := cluster.Wait(); err != nil {
		log.Fatal(err)
	}

	evalNet.SetParamVector(cluster.GlobalModel())
	after := nn.Accuracy(evalNet.Forward(x, false), y)
	fmt.Printf("global model accuracy: %.4f -> %.4f over 20 networked rounds\n", before, after)
	rounds := cluster.DeviceRounds()
	fmt.Printf("per-device training rounds: %v (migrations failed: %d)\n", rounds, cluster.MoveErrors())
}
