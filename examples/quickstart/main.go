// Quickstart: run MIDDLE against classical HFL ("General") on the fast
// MNIST-profile task and print both accuracy curves plus the
// time-to-target comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"middle"
)

func main() {
	const seed = 1

	// A task setup bundles datasets, model architecture, optimizer and
	// topology. Fast scale: 4 edges, 20 devices, 8×8 synthetic images.
	setup := middle.NewTaskSetup(middle.TaskMNIST, middle.Fast, seed)

	// Non-IID shards: every device has a major class with ≥85% of its
	// samples (paper §6.1.2).
	part := setup.Partition(seed)

	// Devices move across edges with global mobility P = 0.5.
	var curves []middle.Series
	var results []middle.TTAResult
	for _, strat := range []middle.Strategy{middle.MIDDLE(), middle.General()} {
		mob := middle.NewMarkovMobility(setup.Edges, setup.Devices, 0.5, seed+11)
		sim := middle.NewSimulation(setup.Config(seed, 80), setup.Factory, part, setup.Test, mob, strat)
		h := sim.Run()
		curves = append(curves, middle.Series{Name: strat.Name(), X: h.Steps, Y: h.GlobalAcc})
		r := middle.TTAResult{Strategy: strat.Name(), FinalAcc: h.FinalAcc()}
		if step, ok := h.TimeToAccuracy(setup.TargetAcc); ok {
			r.Steps, r.Reached = step, true
		}
		results = append(results, r)
	}

	fmt.Print(middle.LineChart("MIDDLE vs classical HFL (global accuracy)", curves, 70, 14))
	fmt.Println(middle.SpeedupTable(results, "MIDDLE", setup.TargetAcc))
}
