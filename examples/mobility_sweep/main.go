// Mobility sweep: how does the global mobility P affect the final model?
// Reproduces the Figure 7 shape on the fast task and prints the §5
// theoretical reference (the Theorem 1 bound decreases monotonically in
// P) next to the measured results.
//
//	go run ./examples/mobility_sweep
package main

import (
	"fmt"

	"middle"
)

func main() {
	const seed = 3
	ps := []float64{0.1, 0.3, 0.5}

	setup := middle.NewTaskSetup(middle.TaskMNIST, middle.Fast, seed)
	strategies := []middle.Strategy{middle.MIDDLE(), middle.OORT(), middle.FedMes()}
	res := middle.RunFig7(setup, strategies, ps, seed, 100)

	groups := make([]string, len(ps))
	for i, p := range ps {
		groups[i] = fmt.Sprintf("P=%.1f", p)
	}
	fmt.Print(middle.BarChart("final global accuracy vs mobility", res.Strategies, groups, res.FinalAcc, 32))

	// The convex-case analysis: Remark 1 says the bound shrinks as P
	// grows; the empirical divergence term shrinks with aggregation on.
	fmt.Println("\nTheorem 1 bound (α = 0.5) as a function of P:")
	for _, p := range ps {
		b := middle.TheoremBound(middle.BoundParams{
			Beta: 1, Mu: 1, Gamma: 10, T: 100,
			B: 1, InitDist2: 4, I: 10, G2: 4, Alpha: 0.5, P: p,
		})
		fmt.Printf("  P=%.1f  bound=%.3f\n", p, b)
	}
}
