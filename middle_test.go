package middle_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"middle"
)

// These tests exercise the public facade end to end: everything a
// downstream user can reach without touching internal packages.

func TestPublicQuickstartFlow(t *testing.T) {
	setup := middle.NewTaskSetup(middle.TaskMNIST, middle.Fast, 1)
	part := setup.Partition(1)
	mob := middle.NewMarkovRingMobility(setup.Edges, setup.Devices, 0.5, 1)
	sim := middle.NewSimulation(setup.Config(1, 10), setup.Factory, part, setup.Test, mob, middle.MIDDLE())
	h := sim.Run()
	if h.Len() == 0 {
		t.Fatal("no evaluations recorded")
	}
	if h.FinalAcc() <= 0 || h.FinalAcc() > 1 {
		t.Fatalf("final accuracy %v", h.FinalAcc())
	}
	if h.Strategy != "MIDDLE" {
		t.Fatalf("history strategy %q", h.Strategy)
	}
}

func TestPublicStrategyRegistry(t *testing.T) {
	names := middle.StrategyNames()
	if len(names) < 6 {
		t.Fatalf("registry names %v", names)
	}
	for _, n := range names {
		s, err := middle.StrategyByName(n)
		if err != nil || s.Name() != n {
			t.Fatalf("ByName(%q) -> %v, %v", n, s, err)
		}
	}
	if _, err := middle.StrategyByName("nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if got := len(middle.EvaluationSet()); got != 5 {
		t.Fatalf("evaluation set %d", got)
	}
	if got := len(middle.AblationSet()); got != 4 {
		t.Fatalf("ablation set %d", got)
	}
}

func TestPublicSimilarityMath(t *testing.T) {
	if u := middle.SimilarityUtility([]float64{1, 0}, []float64{-1, 0}); u != 0 {
		t.Fatalf("opposed utility %v", u)
	}
	agg, u := middle.OnDeviceAggregate([]float64{2, 0}, []float64{4, 0})
	if math.Abs(u-1) > 1e-12 || math.Abs(agg[0]-3) > 1e-12 {
		t.Fatalf("aggregate %v u %v", agg, u)
	}
	sAligned := middle.SelectionScore([]float64{1, 0}, []float64{2, 0})
	sDiverse := middle.SelectionScore([]float64{1, 0}, []float64{1, 1})
	if sDiverse <= sAligned {
		t.Fatal("selection score ordering wrong")
	}
}

func TestPublicMobilityAndTraces(t *testing.T) {
	mob := middle.NewMarkovMobility(4, 12, 0.3, 9)
	tr := middle.RecordTrace(mob, 30)
	if tr.Steps() != 30 || tr.NumDevices() != 12 {
		t.Fatalf("trace %d steps %d devices", tr.Steps(), tr.NumDevices())
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := middle.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.EmpiricalMobility() != tr.EmpiricalMobility() {
		t.Fatal("trace round trip changed mobility")
	}
	wp := middle.NewRandomWaypointMobility(2, 2, 8, 0.05, 0.1, 1, 3)
	if wp.NumEdges() != 4 {
		t.Fatalf("waypoint edges %d", wp.NumEdges())
	}
	st := middle.NewStaticMobility(3, 9)
	if middle.RecordTrace(st, 10).EmpiricalMobility() != 0 {
		t.Fatal("static mobility moved")
	}
}

func TestPublicModelBuilders(t *testing.T) {
	rng := middle.NewRNG(1)
	if n := middle.NewCNN2(middle.CNN2Config{InC: 1, H: 8, W: 8, Classes: 4, C1: 2, C2: 3, Hidden: 8}, rng); n.NumParams() == 0 {
		t.Fatal("CNN2 empty")
	}
	if n := middle.NewCNN3(middle.CNN3Config{InC: 3, H: 8, W: 8, Classes: 4, C1: 2, C2: 2, C3: 3, Hidden: 8}, rng); n.NumParams() == 0 {
		t.Fatal("CNN3 empty")
	}
	if n := middle.NewSeqCNN(middle.SeqCNNConfig{L: 1600, Classes: 4, C1: 2, C2: 2, C3: 3, Hidden: 8}, rng); n.NumParams() == 0 {
		t.Fatal("SeqCNN empty")
	}
	mlp := middle.NewMLP(middle.MLPConfig{In: 4, Classes: 2, Hidden: []int{3}}, rng)
	v := mlp.ParamVector()
	mlp.SetParamVector(v)
	if len(v) != mlp.NumParams() {
		t.Fatal("param vector round trip broken")
	}
}

func TestPublicDatasets(t *testing.T) {
	for _, task := range middle.AllTasks() {
		train, test := middle.GenerateTask(task, 40, 20, 1)
		if train.Len() != 40 || test.Len() != 20 {
			t.Fatalf("%s sizes %d/%d", task, train.Len(), test.Len())
		}
	}
	train, _ := middle.GenerateTask(middle.TaskMNIST, 200, 10, 1)
	p := middle.PartitionMajorClass(train, 5, 20, 0.9, 2)
	if p.NumDevices() != 5 {
		t.Fatal("partition devices")
	}
	pc := middle.PartitionMajorClassClustered(train, 8, 20, 0.9, 4, 2)
	if pc.NumDevices() != 8 {
		t.Fatal("clustered partition devices")
	}
	iid := middle.PartitionIID(train, 3, 30, 2)
	if len(iid.Indices[2]) != 30 {
		t.Fatal("iid partition size")
	}
}

func TestPublicReporting(t *testing.T) {
	sm := middle.Smooth([]float64{0, 3, 0}, 3)
	if sm[1] != 1 {
		t.Fatalf("smooth %v", sm)
	}
	table := middle.SpeedupTable([]middle.TTAResult{
		{Strategy: "MIDDLE", Steps: 10, Reached: true, FinalAcc: 0.9},
		{Strategy: "OORT", Steps: 20, Reached: true, FinalAcc: 0.8},
	}, "MIDDLE", 0.8)
	if !strings.Contains(table, "2.00×") {
		t.Fatalf("table missing speedup:\n%s", table)
	}
	chart := middle.LineChart("t", []middle.Series{{Name: "a", X: []int{0, 1}, Y: []float64{0, 1}}}, 20, 5)
	if !strings.Contains(chart, "a") {
		t.Fatal("chart missing legend")
	}
	bars := middle.BarChart("t", []string{"x"}, []string{"g"}, [][]float64{{0.5}}, 10)
	if !strings.Contains(bars, "0.5000") {
		t.Fatal("bars missing value")
	}
	var buf bytes.Buffer
	if err := middle.WriteSeriesCSV(&buf, []middle.Series{{Name: "a", X: []int{1}, Y: []float64{0.5}}}); err != nil {
		t.Fatal(err)
	}
	series, err := middle.ReadSeriesCSV(&buf)
	if err != nil || len(series) != 1 || series[0].Y[0] != 0.5 {
		t.Fatalf("csv round trip: %v %v", series, err)
	}
}

func TestPublicTheoremBound(t *testing.T) {
	lo := middle.TheoremBound(middle.BoundParams{Beta: 1, Mu: 1, Gamma: 10, T: 100, B: 1, InitDist2: 1, I: 5, G2: 1, Alpha: 0.5, P: 1.0})
	hi := middle.TheoremBound(middle.BoundParams{Beta: 1, Mu: 1, Gamma: 10, T: 100, B: 1, InitDist2: 1, I: 5, G2: 1, Alpha: 0.5, P: 0.1})
	if lo >= hi {
		t.Fatalf("bound not decreasing in P: %v vs %v", lo, hi)
	}
}

func TestPublicCustomStrategyInterface(t *testing.T) {
	// A user-defined strategy compiles and runs against the engine.
	type randomish struct{ middle.Strategy }
	base := middle.General()
	custom := randomish{base}
	setup := middle.NewTaskSetup(middle.TaskMNIST, middle.Fast, 2)
	part := setup.Partition(2)
	mob := middle.NewStaticMobility(setup.Edges, setup.Devices)
	sim := middle.NewSimulation(setup.Config(2, 5), setup.Factory, part, setup.Test, mob, custom)
	if sim.Run().Len() == 0 {
		t.Fatal("custom strategy run recorded nothing")
	}
}
